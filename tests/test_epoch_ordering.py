"""Epoch-crossing ordering: the oracle fast path and recovery barriers.

Section 4.3's rule — any timestamp of a lower epoch happens-before any
timestamp of a higher epoch — must hold through every ordering surface:
the vector-clock comparison, the timeline oracle's query path, and the
skyline-indexed reachability search (whose buckets are keyed by
``(epoch, issuer)``).  Recovery must also honour it physically: a
recovered shard reloads from the backing store and *drops* pre-epoch
stragglers instead of replaying them.
"""

from repro.cluster.messages import QueuedTransaction
from repro.core.gatekeeper import Gatekeeper
from repro.core.oracle import TimelineOracle
from repro.core.vclock import Ordering
from repro.db import operations as ops
from repro.db.config import WeaverConfig
from repro.programs import GetNode
from repro.sim.clock import MSEC, USEC
from repro.sim.deployment import SimulatedWeaver


class TestOracleFastPath:
    def test_query_order_crosses_epochs_without_graph_events(self):
        gk = Gatekeeper(0, 2)
        old = gk.issue_timestamp()
        gk.advance_epoch(1)
        new = gk.issue_timestamp()
        oracle = TimelineOracle()
        assert oracle.query_order(old, new) is Ordering.BEFORE
        assert oracle.query_order(new, old) is Ordering.AFTER
        # The vclock epoch rule answered; no events were registered.
        assert oracle.num_events == 0

    def test_order_across_epochs_mints_no_decision(self):
        gk = Gatekeeper(0, 2)
        old = gk.issue_timestamp()
        gk.advance_epoch(1)
        new = gk.issue_timestamp()
        oracle = TimelineOracle()
        assert oracle.order(old, new, prefer=Ordering.AFTER) is (
            Ordering.BEFORE
        )
        assert oracle.stats.decisions == 0

    def test_epoch_restart_does_not_confuse_issuer_fast_path(self):
        # After an epoch bump the clock restarts: the new stamp's counter
        # is *smaller* than the old one's, and only the epoch rule keeps
        # the comparison correct.
        gk = Gatekeeper(0, 2)
        for _ in range(5):
            old = gk.issue_timestamp()
        gk.advance_epoch(1)
        new = gk.issue_timestamp()
        assert new.clocks[0] < old.clocks[0]
        assert old.compare(new) is Ordering.BEFORE

    def test_skyline_buckets_are_per_epoch(self):
        gks = [Gatekeeper(i, 2) for i in range(2)]
        a0, b0 = (gk.issue_timestamp() for gk in gks)
        oracle = TimelineOracle()
        for ts in (a0, b0):
            oracle.create_event(ts)
        oracle.assign_order(a0, b0)
        for gk in gks:
            gk.advance_epoch(1)
        a1, b1 = (gk.issue_timestamp() for gk in gks)
        for ts in (a1, b1):
            oracle.create_event(ts)
        oracle.assign_order(a1, b1)
        # One bucket per (epoch, issuer) with explicit out-edges.
        assert set(oracle.graph._out_index) == {(0, 0), (1, 0)}
        # Cross-epoch reachability is immediate (epoch rule)...
        assert oracle.graph.reaches(a0, b1)
        assert oracle.query_order(b0, a1) is Ordering.BEFORE
        # ...while epoch-0 commitments do not leak order into concurrent
        # epoch-1 pairs beyond what was actually decided there.
        c1 = gks[0].issue_timestamp()
        oracle.create_event(c1)
        assert oracle.query_order(c1, b1) is None

    def test_search_within_new_epoch_prunes_old_buckets(self):
        gks = [Gatekeeper(i, 2) for i in range(2)]
        oracle = TimelineOracle()
        # A long epoch-0 explicit chain to make pruning observable.
        prev = gks[0].issue_timestamp()
        oracle.create_event(prev)
        for _ in range(4):
            nxt = gks[0].issue_timestamp()
            oracle.create_event(nxt)
            oracle.assign_order(prev, nxt)
            prev = nxt
        for gk in gks:
            gk.advance_epoch(1)
        a1 = gks[0].issue_timestamp()
        b1 = gks[1].issue_timestamp()
        for ts in (a1, b1):
            oracle.create_event(ts)
        pruned_before = oracle.stats.bfs_pruned
        assert oracle.query_order(a1, b1) is None
        # The epoch-0 bucket was skipped wholesale, not bisected.
        assert oracle.stats.bfs_pruned > pruned_before


class TestRecoveryBarrier:
    def make(self):
        return SimulatedWeaver(
            WeaverConfig(num_gatekeepers=2, num_shards=2),
            tau=200 * USEC,
            nop_period=100 * USEC,
            heartbeat_period=5 * MSEC,
        )

    def test_recovered_shard_drops_pre_epoch_straggler(self):
        sw = self.make()
        box = {}
        sw.submit_transaction(
            [ops.CreateVertex("a"), ops.SetVertexProperty("a", "k", 1)],
            callback=lambda ok, v: box.update(ok=ok),
            new_vertices=("a",),
        )
        sw.run(2 * MSEC)
        assert box["ok"]
        # A stamp minted before the crash, as if its message were still
        # in flight when the shard died.
        old_ts = sw.gatekeepers[0].issue_timestamp()
        assert old_ts.epoch == 0
        sw.crash_shard(0)
        sw.run(60 * MSEC)  # detector fires, epoch bumps, shard reloads
        assert sw.recoveries == 1
        straggler = QueuedTransaction(
            old_ts, (ops.SetVertexProperty("a", "k", 99),), None, None
        )
        before = sw.stragglers_dropped
        depths = sw.shards[0].queue_depths()
        sw._deliver(0, 0, straggler)
        # Dropped by the epoch barrier, not queued or applied: the
        # reloaded store state already reflects everything pre-epoch.
        assert sw.stragglers_dropped == before + 1
        assert sw.shards[0].queue_depths() == depths

    def test_stamps_across_shard_recovery_stay_ordered(self):
        sw = self.make()
        box = {}
        sw.submit_transaction(
            [ops.CreateVertex("a"), ops.SetVertexProperty("a", "k", 1)],
            callback=lambda ok, v: box.update(pre=v),
            new_vertices=("a",),
        )
        sw.run(2 * MSEC)
        sw.crash_shard(0)
        sw.run(60 * MSEC)
        assert sw.recoveries == 1
        sw.submit_transaction(
            [ops.SetVertexProperty("a", "k", 2)],
            callback=lambda ok, v: box.update(post=v, ok=ok),
        )
        sw.run(5 * MSEC)
        assert box["ok"]
        assert box["pre"].compare(box["post"]) is Ordering.BEFORE
        result_box = {}
        sw.submit_program(
            GetNode(), "a", callback=lambda r: result_box.update(r=r)
        )
        sw.run(20 * MSEC)
        assert result_box["r"].value["properties"]["k"] == 2
