"""Dynamic vertex migration and locality rebalancing (section 4.6)."""

import pytest

from repro.db import Weaver, WeaverClient, WeaverConfig
from repro.errors import ClusterError, NoSuchVertex
from repro.workloads import graphs


@pytest.fixture
def setup():
    db = Weaver(WeaverConfig(num_gatekeepers=2, num_shards=3))
    client = WeaverClient(db)
    with client.transaction() as tx:
        for name in ("a", "b", "c"):
            tx.create_vertex(name)
        tx.set_property("a", "k", 1)
        tx.create_edge("a", "b", "ab")
        tx.set_edge_property("a", "ab", "w", 2)
    return db, client


class TestMigrateVertex:
    def test_moves_record_and_mapping(self, setup):
        db, client = setup
        source = db.mapping.lookup("a")
        target = (source + 1) % 3
        assert db.migrate_vertex("a", target)
        assert db.mapping.lookup("a") == target
        db.drain()
        assert "a" in db.shards[target].graph
        assert "a" not in db.shards[source].graph

    def test_reads_work_after_migration(self, setup):
        db, client = setup
        db.migrate_vertex("a", (db.mapping.lookup("a") + 1) % 3)
        node = client.get_node("a")
        assert node["properties"] == {"k": 1}
        edges = client.get_edges("a")
        assert edges[0]["properties"] == {"w": 2}
        assert client.reachable("a", "b")

    def test_history_travels_with_the_vertex(self, setup):
        db, client = setup
        point = db.checkpoint()
        client.set_property("a", "k", 2)
        db.migrate_vertex("a", (db.mapping.lookup("a") + 1) % 3)
        # Unlike eviction, migration carries every version.
        assert client.get_node("a", at=point)["properties"]["k"] == 1
        assert client.get_node("a")["properties"]["k"] == 2

    def test_writes_route_to_new_shard(self, setup):
        db, client = setup
        target = (db.mapping.lookup("a") + 1) % 3
        db.migrate_vertex("a", target)
        client.set_property("a", "k", 3)
        db.drain()
        vertex = db.shards[target].graph.raw_vertex("a")
        assert vertex is not None
        assert client.get_node("a")["properties"]["k"] == 3

    def test_same_shard_is_noop(self, setup):
        db, _ = setup
        assert not db.migrate_vertex("a", db.mapping.lookup("a"))

    def test_unknown_vertex_rejected(self, setup):
        db, _ = setup
        with pytest.raises(NoSuchVertex):
            db.migrate_vertex("ghost", 0)

    def test_unknown_shard_rejected(self, setup):
        db, _ = setup
        with pytest.raises(ClusterError):
            db.migrate_vertex("a", 9)


class TestMigrationWithPaging:
    def test_evicted_vertex_can_migrate(self, setup):
        db, client = setup
        db.enable_demand_paging()
        db.evict_vertex("a")
        target = (db.mapping.lookup("a") + 1) % 3
        assert db.migrate_vertex("a", target)
        assert client.get_node("a")["properties"] == {"k": 1}


class TestRebalance:
    def test_rebalance_reduces_edge_cut(self):
        db = Weaver(WeaverConfig(num_gatekeepers=2, num_shards=4))
        client = WeaverClient(db)
        edges = graphs.social_graph(120, 5, seed=17)
        graphs.load_into_weaver(client, edges)
        cut_before, total = db.edge_cut()
        moves = db.rebalance(max_moves=200)
        cut_after, total_after = db.edge_cut()
        assert total_after == total
        assert moves > 0
        assert cut_after < cut_before

    def test_rebalance_preserves_all_answers(self):
        db = Weaver(WeaverConfig(num_gatekeepers=2, num_shards=3))
        client = WeaverClient(db)
        edges = graphs.twitter_graph(60, 3, seed=19)
        graphs.load_into_weaver(client, edges)
        start = edges[-1][0]
        before = client.traverse(start)
        db.rebalance(max_moves=100)
        assert client.traverse(start) == before

    def test_rebalance_respects_move_budget(self):
        db = Weaver(WeaverConfig(num_gatekeepers=2, num_shards=4))
        client = WeaverClient(db)
        edges = graphs.social_graph(100, 5, seed=23)
        graphs.load_into_weaver(client, edges)
        assert db.rebalance(max_moves=5) <= 5

    def test_rebalance_idempotent_at_fixpoint(self):
        db = Weaver(WeaverConfig(num_gatekeepers=2, num_shards=3))
        client = WeaverClient(db)
        edges = graphs.twitter_graph(50, 3, seed=29)
        graphs.load_into_weaver(client, edges)
        while db.rebalance(max_moves=500):
            pass
        assert db.rebalance(max_moves=500) == 0
