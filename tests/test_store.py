"""The transactional backing store: MVCC cells and OCC transactions.

Every transaction/utility test runs against both backends — the
in-memory :class:`TransactionalStore` and the SQLite-backed
:class:`DurableStore` — via the ``store`` fixture: the durable store
implements the same contract, so the same assertions must hold.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import StoreError, TransactionAborted, TransactionError
from repro.store.durable import DurableStore
from repro.store.kvstore import META_COMMIT_VERSION, TransactionalStore
from repro.store.versioned import VersionedCell

BACKENDS = ("memory", "sqlite")


def make_store(backend, **kwargs):
    if backend == "sqlite":
        return DurableStore(":memory:", **kwargs)
    return TransactionalStore(**kwargs)


@pytest.fixture(params=BACKENDS)
def backend(request):
    return request.param


@pytest.fixture
def store(backend):
    s = make_store(backend)
    yield s
    if hasattr(s, "close"):
        s.close()


class TestVersionedCell:
    def test_empty_cell_reads_missing(self):
        cell = VersionedCell()
        assert cell.read() == (False, None, 0)

    def test_write_and_read_latest(self):
        cell = VersionedCell()
        cell.write(1, "a")
        cell.write(3, "b")
        assert cell.read() == (True, "b", 3)

    def test_snapshot_read_picks_correct_version(self):
        cell = VersionedCell()
        cell.write(1, "a")
        cell.write(3, "b")
        assert cell.read(2) == (True, "a", 1)

    def test_snapshot_before_first_write_is_missing(self):
        cell = VersionedCell()
        cell.write(5, "a")
        assert cell.read(4) == (False, None, 0)

    def test_tombstone_hides_value(self):
        cell = VersionedCell()
        cell.write(1, "a")
        cell.delete(2)
        exists, value, version = cell.read()
        assert not exists and version == 2

    def test_read_before_tombstone_sees_value(self):
        cell = VersionedCell()
        cell.write(1, "a")
        cell.delete(2)
        assert cell.read(1) == (True, "a", 1)

    def test_versions_must_increase(self):
        cell = VersionedCell()
        cell.write(2, "a")
        with pytest.raises(ValueError):
            cell.write(2, "b")

    def test_latest_version(self):
        cell = VersionedCell()
        assert cell.latest_version == 0
        cell.write(7, "x")
        assert cell.latest_version == 7

    def test_collect_below_keeps_newest_at_or_below(self):
        cell = VersionedCell()
        for v in (1, 2, 3, 4):
            cell.write(v, f"v{v}")
        dropped = cell.collect_below(3)
        assert dropped == 2
        assert cell.read(3) == (True, "v3", 3)
        assert cell.read() == (True, "v4", 4)

    def test_collect_below_noop_when_single(self):
        cell = VersionedCell()
        cell.write(1, "a")
        assert cell.collect_below(5) == 0

    def test_collect_below_purges_lone_tombstone(self):
        cell = VersionedCell()
        cell.write(1, "a")
        cell.delete(2)
        dropped = cell.collect_below(5)
        # Both the superseded value and the now-lone tombstone go: reads
        # at or above the watermark answer "missing" either way.
        assert dropped == 2
        assert len(cell) == 0
        assert cell.read(5) == (False, None, 0)

    def test_collect_below_keeps_tombstone_with_newer_record(self):
        cell = VersionedCell()
        cell.write(1, "a")
        cell.delete(2)
        cell.write(3, "b")
        cell.collect_below(2)
        assert cell.read(2) == (False, None, 2)  # tombstone survives
        assert cell.read() == (True, "b", 3)

    def test_collect_below_keeps_tombstone_above_watermark(self):
        cell = VersionedCell()
        cell.write(1, "a")
        cell.delete(5)
        assert cell.collect_below(3) == 0
        assert cell.read(4) == (True, "a", 1)

    def test_history(self):
        cell = VersionedCell()
        cell.write(1, "a")
        cell.delete(2)
        assert cell.history() == [(1, True, "a"), (2, False, None)]


class TestTransactions:
    def test_put_get_commit(self, store):
        tx = store.begin()
        tx.put("k", 1)
        assert tx.get("k") == 1  # read-your-writes
        tx.commit()
        assert store.get("k") == 1

    def test_uncommitted_writes_invisible(self, store):
        tx = store.begin()
        tx.put("k", 1)
        assert store.get("k") is None

    def test_delete_in_tx(self, store):
        store.transact(lambda t: t.put("k", 1))
        tx = store.begin()
        tx.delete("k")
        assert tx.get("k") is None
        assert not tx.exists("k")
        tx.commit()
        assert not store.exists("k")

    def test_write_then_delete_then_write(self, store):
        tx = store.begin()
        tx.put("k", 1)
        tx.delete("k")
        tx.put("k", 2)
        tx.commit()
        assert store.get("k") == 2

    def test_snapshot_isolation_of_reads(self, store):
        store.transact(lambda t: t.put("k", 1))
        tx = store.begin()
        assert tx.get("k") == 1
        store.transact(lambda t: t.put("other", 9))
        # Reads stay at the snapshot even as other keys move on.
        assert tx.get("k") == 1

    def test_read_conflict_aborts(self, store):
        store.transact(lambda t: t.put("k", 1))
        tx = store.begin()
        tx.get("k")
        store.transact(lambda t: t.put("k", 2))
        tx.put("unrelated", 1)
        with pytest.raises(TransactionAborted):
            tx.commit()
        assert store.aborts == 1

    def test_write_write_conflict_aborts(self, store):
        tx = store.begin()
        tx.put("k", "mine")
        store.transact(lambda t: t.put("k", "theirs"))
        with pytest.raises(TransactionAborted):
            tx.commit()

    def test_blind_writes_to_distinct_keys_both_commit(self, store):
        tx1 = store.begin()
        tx2 = store.begin()
        tx1.put("a", 1)
        tx2.put("b", 2)
        tx1.commit()
        tx2.commit()
        assert store.get("a") == 1 and store.get("b") == 2

    def test_first_committer_wins(self, store):
        tx1 = store.begin()
        tx2 = store.begin()
        tx1.put("k", 1)
        tx2.put("k", 2)
        tx1.commit()
        with pytest.raises(TransactionAborted):
            tx2.commit()
        assert store.get("k") == 1

    def test_use_after_commit_raises(self, store):
        tx = store.begin()
        tx.commit()
        with pytest.raises(TransactionError):
            tx.put("k", 1)

    def test_use_after_abort_raises(self, store):
        tx = store.begin()
        tx.abort()
        with pytest.raises(TransactionError):
            tx.get("k")

    def test_read_and_write_sets(self, store):
        tx = store.begin()
        tx.get("r")
        tx.put("w", 1)
        tx.delete("d")
        assert tx.read_set == {"r"}
        assert tx.write_set == {"w", "d"}

    def test_transact_retries_until_success(self, store):
        store.transact(lambda t: t.put("k", 0))
        attempts = []

        def bump(tx):
            value = tx.get("k")
            if not attempts:
                # Sabotage the first attempt with a conflicting commit.
                store.transact(lambda t: t.put("k", value + 10))
            attempts.append(value)
            tx.put("k", value + 1)

        store.transact(bump)
        assert store.get("k") == 11
        assert len(attempts) == 2
        assert store.stats.retries == 1

    def test_transact_gives_up_after_retries(self, store):
        store.transact(lambda t: t.put("k", 0))

        def always_conflicts(tx):
            tx.get("k")
            store.transact(lambda t: t.put("k", t.get("k") or 0))
            tx.put("k", 1)

        with pytest.raises(TransactionAborted):
            store.transact(always_conflicts, retries=3)

    def test_commit_version_monotonic(self, store):
        v1 = store.transact(lambda t: t.put("a", 1)) or store.version
        store.transact(lambda t: t.put("b", 2))
        assert store.version > v1 - 1


class TestTransactRetryHygiene:
    """The PR-3 client fixes, mirrored at the store layer: a failed
    ``transact`` must not leak an open transaction, and conflict retries
    must back off with jitter instead of re-colliding in lockstep."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_unexpected_exception_aborts_open_tx(self, backend):
        store = make_store(backend)

        def explode(tx):
            tx.put("k", 1)
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            store.transact(explode)
        # The transaction was aborted on the way out: its snapshot pin
        # is released, so compaction is not blocked forever.
        assert store._open_snapshots == {}
        assert store.get("k") is None

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_conflict_retries_release_snapshots(self, backend):
        store = make_store(backend)
        store.transact(lambda t: t.put("k", 0))

        def always_conflicts(tx):
            tx.get("k")
            store.transact(lambda t: t.put("k", (t.get("k") or 0) + 1))
            tx.put("k", -1)

        with pytest.raises(TransactionAborted):
            store.transact(always_conflicts, retries=3)
        assert store._open_snapshots == {}

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_retries_backoff_with_jitter(self, backend):
        sleeps = []

        class Rng:
            def random(self):
                return 0.5

        store = make_store(backend, sleep=sleeps.append, rng=Rng())
        store.transact(lambda t: t.put("k", 0))

        def always_conflicts(tx):
            tx.get("k")
            store.transact(lambda t: t.put("k", (t.get("k") or 0) + 1))
            tx.put("k", -1)

        with pytest.raises(TransactionAborted):
            store.transact(always_conflicts, retries=4)
        # One sleep per retry (not before the first attempt), capped,
        # exponentially growing ceilings, scaled by the rng draw.
        assert len(sleeps) == 3
        assert sleeps == sorted(sleeps)
        assert all(0 < s <= 0.05 for s in sleeps)
        assert store.stats.retries == 3

    def test_first_attempt_never_sleeps(self):
        sleeps = []
        store = TransactionalStore(sleep=sleeps.append)
        store.transact(lambda t: t.put("k", 1))
        assert sleeps == []
        assert store.stats.retries == 0


class TestStoreUtilities:
    def test_keys_prefix_filter(self, store):
        store.transact(lambda t: (t.put("v:a", 1), t.put("e:x", 2)))
        assert list(store.keys("v:")) == ["v:a"]

    def test_keys_excludes_deleted(self, store):
        store.transact(lambda t: t.put("k", 1))
        store.transact(lambda t: t.delete("k"))
        assert list(store.keys()) == []

    def test_read_at_historical_version(self, store):
        store.transact(lambda t: t.put("k", "old"))
        v = store.version
        store.transact(lambda t: t.put("k", "new"))
        assert store.read_at("k", v) == (True, "old")

    def test_snapshot_and_restore(self, store, backend):
        store.transact(lambda t: (t.put("a", 1), t.put("b", 2)))
        store.transact(lambda t: t.delete("b"))
        snap = store.snapshot()
        assert snap == {"a": 1, META_COMMIT_VERSION: 2}
        fresh = make_store(backend)
        fresh.restore(snap)
        assert fresh.get("a") == 1

    def test_restore_requires_empty(self, store):
        store.transact(lambda t: t.put("a", 1))
        with pytest.raises(StoreError):
            store.restore({"b": 2})

    def test_restore_resumes_commit_counter(self, store, backend):
        """Regression: snapshot()/restore() used to drop the commit
        counter, so a recovered store reused pre-crash commit versions —
        corrupting everything keyed on them (checker digest joins)."""
        for i in range(5):
            store.transact(lambda t, i=i: t.put("k", i))
        pre_crash = store.version
        assert pre_crash == 5
        fresh = make_store(backend)
        fresh.restore(store.snapshot())
        versions = [fresh.version]
        for i in range(3):
            fresh.transact(lambda t, i=i: t.put("k", 10 + i))
            versions.append(fresh.version)
        # Strictly increasing, and never dipping back into pre-crash
        # territory.
        assert versions == sorted(set(versions))
        assert all(v > pre_crash for v in versions)

    def test_collect_below_reclaims_versions(self, store):
        for i in range(5):
            store.transact(lambda t, i=i: t.put("k", i))
        reclaimed = store.collect_below(store.version)
        assert reclaimed == 4
        assert store.get("k") == 4
        assert store.stats.records_collected == 4
        assert store.stats.compactions == 1

    def test_collect_below_purges_deleted_keys(self, store, backend):
        """Regression: create/delete churn used to leak — the lone
        tombstone (and the cell holding it) survived every collection."""
        for i in range(10):
            store.transact(lambda t, i=i: t.put(f"churn{i}", "x"))
            store.transact(lambda t, i=i: t.delete(f"churn{i}"))
        store.transact(lambda t: t.put("keep", 1))
        store.collect_below(store.safe_compact_version())
        assert list(store.keys()) == ["keep"]
        assert store.stats.tombstones_purged == 10
        if backend == "memory":
            assert set(store._cells) == {"keep"}
        else:
            rows = store._conn.execute(
                "SELECT COUNT(*) FROM records"
            ).fetchone()[0]
            assert rows == 1

    def test_safe_compact_version_pins_open_snapshots(self, store):
        store.transact(lambda t: t.put("k", 1))
        tx = store.begin()
        snap = tx.snapshot
        store.transact(lambda t: t.put("k", 2))
        assert store.safe_compact_version() == snap
        # The pinned record survives compaction at the safe version.
        store.collect_below(store.safe_compact_version())
        assert tx.get("k") == 1
        tx.abort()
        assert store.safe_compact_version() == store.version


# -- property-based: OCC never loses an update ------------------------------

@pytest.mark.parametrize("store_backend", BACKENDS)
@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 2), st.sampled_from(["a", "b"])),
        min_size=1,
        max_size=20,
    )
)
def test_occ_counter_increments_never_lost(store_backend, schedule):
    """Interleaved read-modify-write transactions: every successful
    commit's increment is reflected in the final counter value."""
    store = make_store(store_backend)
    store.transact(lambda t: (t.put("a", 0), t.put("b", 0)))
    open_txs = {}
    successes = {"a": 0, "b": 0}
    for slot, key in schedule:
        if slot not in open_txs:
            tx = store.begin()
            open_txs[slot] = (tx, key, tx.get(key))
        else:
            tx, tx_key, seen = open_txs.pop(slot)
            tx.put(tx_key, seen + 1)
            try:
                tx.commit()
                successes[tx_key] += 1
            except TransactionAborted:
                pass
    for slot, (tx, tx_key, seen) in open_txs.items():
        tx.put(tx_key, seen + 1)
        try:
            tx.commit()
            successes[tx_key] += 1
        except TransactionAborted:
            pass
    assert store.get("a") == successes["a"]
    assert store.get("b") == successes["b"]
    if hasattr(store, "close"):
        store.close()
