"""The streaming referee must agree with the offline one, bit for bit.

Four claims: (1) on every chaos seed the online checker reaches the
same verdict and the same digest as the offline ``HistoryChecker`` fed
from the same span stream; (2) both are invariant under span delivery
order — a shuffled stream produces identical digests and verdicts,
because every record carries its own order key; (3) watermark
settlement prunes the retained window down to floors and frontiers
without changing the verdict; (4) a chunked soak run (Zipf + crashes +
live GC) keeps the window flat while the history grows without bound —
the memory-bound property that makes an always-on referee possible.
"""

import random

import pytest

from repro.core.oracle import TimelineOracle
from repro.core.vclock import Ordering, VectorClock
from repro.obs.trace import Span
from repro.sim.clock import MSEC
from repro.verify.history import History, HistoryChecker, decided_order
from repro.verify.online import OnlineChecker
from repro.workloads.chaos import run_chaos, run_soak

HORIZON = 30 * MSEC
SEEDS = (1, 2, 3)

_cache = {}


def chaos(seed):
    if seed not in _cache:
        _cache[seed] = run_chaos(seed, duration=HORIZON, online=True)
    return _cache[seed]


def make_span(kind, at=0.0, **attrs):
    return Span(
        trace_id=None, kind=kind, at=at, node="synth", seq=0,
        attrs=tuple(attrs.items()),
    )


class SynthRun:
    """A randomly generated small history, clean by construction.

    Two issuers tick (and occasionally exchange) vector clocks; commits
    carry store versions in issue order, with the oracle deciding each
    consecutive concurrent pair in the same order (what the real
    deployments do); both shards apply every commit in store order; and
    reads run after a full clock exchange, observing the newest write —
    so every check passes, under any delivery order of the spans.
    """

    def __init__(self, seed, commits=14, reads=4, vertices=4):
        rng = random.Random(seed)
        self.oracle = TimelineOracle()
        self.compare = decided_order(self.oracle)
        self.clocks = [VectorClock(2, 0), VectorClock(2, 1)]
        self.spans = []
        names = [f"x{i}" for i in range(vertices)]
        t = 0.0
        version = 0
        latest = {}
        issued = []
        for tag in range(commits):
            issuer = rng.randrange(2)
            if rng.random() < 0.4:
                self.clocks[issuer].observe(
                    self.clocks[1 - issuer].announce()
                )
            ts = self.clocks[issuer].tick()
            if issued:
                prev = issued[-1]
                if prev.compare(ts) is Ordering.CONCURRENT:
                    self.oracle.assign_order(prev, ts)
            issued.append(ts)
            targets = sorted(rng.sample(names, rng.choice((1, 1, 2))))
            version += 1
            submitted, t = t, t + 1.0
            acked, t = t, t + 1.0
            self.spans.append(make_span(
                "store.commit", at=acked, ts=ts, gk=issuer,
                commit_seq=version,
            ))
            self.spans.append(make_span(
                "txn.commit", at=acked, tag=tag, ts=ts,
                writes=tuple((v, tag) for v in targets),
                submitted_at=submitted,
            ))
            for vertex in targets:
                latest[vertex] = tag
        for shard in (0, 1):
            for i, ts in enumerate(issued, start=1):
                self.spans.append(make_span(
                    "shard.apply", at=t, ts=ts, shard=shard,
                    apply_seq=i, epoch=0,
                ))
        for i in (0, 1):
            self.clocks[i].observe(self.clocks[1 - i].announce())
        for q in range(reads):
            ts = self.clocks[rng.randrange(2)].tick()
            vertex = rng.choice(names)
            submitted, t = t, t + 1.0
            done, t = t, t + 1.0
            self.spans.append(make_span(
                "program.read", at=done, query_id=1000 + q, ts=ts,
                reads=((vertex, latest.get(vertex)),),
                submitted_at=submitted,
            ))

    def watermark(self):
        """A stamp dominating everything issued so far."""
        self.clocks[0].observe(self.clocks[1].announce())
        return self.clocks[0].tick()


def feed(spans, compare):
    history = History()
    online = OnlineChecker(compare)
    for span in spans:
        history.consume(span)
        online.consume(span)
    return history, online


class TestDifferentialOnChaosSeeds:
    """Satellite: every chaos seed through both checkers."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_same_verdict(self, seed):
        report = chaos(seed)
        offline_kinds = {v.kind for v in report.violations}
        online_kinds = {v.kind for v in report.online_violations}
        assert online_kinds == offline_kinds
        assert report.violations == []
        assert report.online_violations == []

    @pytest.mark.parametrize("seed", SEEDS)
    def test_same_digest(self, seed):
        report = chaos(seed)
        assert report.online_digest == report.digest
        assert len(report.online_digest) == 64

    @pytest.mark.parametrize("seed", SEEDS)
    def test_same_record_counts(self, seed):
        report = chaos(seed)
        stats = report.online.stats
        assert stats.commits == len(report.history.commits)
        assert stats.reads == len(report.history.reads)
        assert stats.applies == sum(
            len(seq) for seq in report.history.applies.values()
        )

    def test_checker_metrics_exported(self):
        report = chaos(SEEDS[0])
        assert report.metrics["checker.commits"] == report.committed
        assert "checker.window.total" in report.metrics
        assert "checker.window.peak" in report.metrics


class TestPermutationInvariance:
    """Satellite: permuted span delivery must not change the verdict."""

    @pytest.mark.parametrize("seed", range(6))
    def test_random_histories_clean_under_any_order(self, seed):
        run = SynthRun(seed)
        history, online = feed(run.spans, run.compare)
        base_digest = history.digest()
        assert online.digest() == base_digest
        assert online.finalize() == []
        assert HistoryChecker(history, run.compare).check() == []

        rng = random.Random(seed * 977 + 13)
        for _ in range(3):
            shuffled = list(run.spans)
            rng.shuffle(shuffled)
            history2, online2 = feed(shuffled, run.compare)
            assert history2.digest() == base_digest
            assert online2.digest() == base_digest
            assert online2.finalize() == []
            assert HistoryChecker(history2, run.compare).check() == []

    def test_prefix_digest_parity_at_every_step(self):
        # The soak invariant, at its finest grain: after *every* span,
        # online and offline digests agree.
        run = SynthRun(99)
        history = History()
        online = OnlineChecker(run.compare)
        for span in run.spans:
            history.consume(span)
            online.consume(span)
            assert online.digest() == history.digest()


class TestWatermarkSettlement:
    def test_watermark_prunes_without_changing_verdict(self):
        run = SynthRun(7, commits=20, reads=3)
        online = OnlineChecker(run.compare)
        for span in run.spans:
            online.consume(span)
        before = online.window_size()
        digest_before = online.digest()
        online.advance_watermark(run.watermark())
        after = online.window_size()
        assert after < before
        assert online.stats.pruned > 0
        assert online.stats.window_pending == 0  # everything settled
        assert online.digest() == digest_before  # pruning is check-state only
        assert online.finalize() == []

    def test_floors_survive_pruning_for_later_reads(self):
        # A read settling after the watermark pruned its observed
        # write's window must still resolve the floor (no phantom).
        run = SynthRun(11, commits=10, reads=0)
        online = OnlineChecker(run.compare)
        for span in run.spans:
            online.consume(span)
        online.advance_watermark(run.watermark())
        latest = {}
        for span in run.spans:
            if span.kind == "txn.commit":
                for vertex, _value in span.attr("writes"):
                    latest[vertex] = span.attr("tag")
        vertex, tag = next(iter(latest.items()))
        ts = run.clocks[0].tick()
        online.consume(make_span(
            "program.read", at=1000.0, query_id=5000, ts=ts,
            reads=((vertex, tag),), submitted_at=999.0,
        ))
        assert online.finalize() == []


class TestSoakMemoryBound:
    """Satellite: retained window stays flat while the history grows."""

    def test_sim_soak_window_flat_after_watermark(self):
        report = run_soak(5, chunks=9)
        assert report.ok, (
            report.online_violations, report.offline_violations,
            report.parity_failures,
        )
        assert report.watermarks > 0
        assert report.pruned > 0
        # The history kept growing...
        assert report.committed_samples[-1] >= 2 * report.committed_samples[1]
        # ...while the retained window did not.
        early = max(report.window_samples[:3])
        late = max(report.window_samples[-3:])
        assert late <= 2 * early
        assert report.window_final <= report.window_peak
        # Gauges are live in the deployment's registry.
        assert "checker.window.total" in report.metrics
        assert "checker.window.peak" in report.metrics
        assert report.metrics["checker.watermarks"] == report.watermarks

    def test_sim_soak_parity_on_every_chunk(self):
        report = run_soak(6, chunks=6)
        assert report.parity_checks == report.chunks + 1
        assert report.parity_failures == 0
        assert report.digest == report.offline_digest

    def test_process_soak_smoke(self):
        report = run_soak(3, transport="process", chunks=4)
        assert report.ok, (
            report.online_violations, report.offline_violations,
            report.parity_failures,
        )
        assert report.recoveries == 1
        assert report.watermarks >= report.chunks  # one GC per chunk
        assert report.parity_failures == 0
        assert report.window_final <= report.window_peak
