"""ProcessWeaver end to end: the real-transport deployment must behave
exactly like the in-process one.

Three claims, in rising order of ambition: (1) the same operations
produce the same program results as the direct :class:`Weaver`; (2) a
transaction's trace chain — client submit through cross-process shard
apply — has the same shape in both deployments, i.e. trace ids survive
the wire (the spans literally cross an OS process boundary and come
back); (3) a Zipf-contended workload survives a SIGKILLed shard worker
mid-run with a recovery, zero strict-serializability violations, and a
clean history digest.
"""

import random
import time

import pytest

from repro.cluster.process import ProcessWeaver
from repro.db import Weaver, WeaverConfig
from repro.obs import assemble_chain
from repro.verify.history import History, HistoryChecker, decided_order
from repro.verify.online import OnlineChecker
from repro.programs.library import (
    CollectReachable,
    CountEdges,
    GetNode,
    Reachability,
    params,
)
from repro.workloads.contention import ZipfSampler


def load_tree(db, n=24, fanout=3):
    """A seeded tree plus properties, identical across deployments."""
    tx = db.begin_transaction()
    handles = [tx.create_vertex(f"p{i}") for i in range(n)]
    for i in range(1, n):
        tx.create_edge(handles[(i - 1) // fanout], handles[i])
    for i, handle in enumerate(handles):
        tx.set_property(handle, "depth", i % 5)
    tx.commit()
    db.drain()
    return handles


@pytest.fixture(scope="module")
def pair():
    config = WeaverConfig(num_shards=2, num_gatekeepers=2)
    direct = Weaver(WeaverConfig(num_shards=2, num_gatekeepers=2))
    with ProcessWeaver(config) as process:
        load_tree(direct)
        load_tree(process)
        yield direct, process


class TestParityWithDirectWeaver:
    def test_reachable_sets_match(self, pair):
        direct, process = pair
        for root in ("p0", "p3", "p23"):
            want = sorted(direct.run_program(CollectReachable(), root).results)
            got = sorted(process.run_program(CollectReachable(), root).results)
            assert got == want

    def test_reachability_verdicts_match(self, pair):
        direct, process = pair
        for src, dst in (("p0", "p23"), ("p23", "p0"), ("p5", "p17")):
            # An empty result set means unreachable (Fig 11 semantics).
            want = direct.run_program(
                Reachability(), src, params(target=dst)
            ).results
            got = process.run_program(
                Reachability(), src, params(target=dst)
            ).results
            assert got == want

    def test_vertex_reads_match(self, pair):
        direct, process = pair
        for handle in ("p0", "p7", "p19"):
            want = direct.run_program(GetNode(), handle).value
            got = process.run_program(GetNode(), handle).value
            assert got == want

    def test_edge_counts_match(self, pair):
        direct, process = pair
        for handle in ("p0", "p1", "p23"):
            want = direct.run_program(CountEdges(), handle).value
            got = process.run_program(CountEdges(), handle).value
            assert got == want


class TestTraceChainParity:
    """Satellite: trace ids cross the process boundary and the replayed
    worker spans reassemble into the same chain the direct deployment
    produces natively."""

    @staticmethod
    def chain_shape(db):
        """(kind, node) sequence for one two-shard transaction's trace."""
        setup = db.begin_transaction()
        handles = [setup.create_vertex() for _ in range(8)]
        setup.commit()
        a = handles[0]
        b = next(
            h for h in handles if db._shard_of(h) != db._shard_of(a)
        )
        tx = db.begin_transaction()
        tx.set_property(a, "k", 1)
        tx.set_property(b, "k", 1)
        tx.commit()
        db.drain()
        spans = assemble_chain(db.tracer, tx.trace_id)
        return [
            (span.kind, span.node)
            for span in spans
            if span.kind != "oracle.decide"
        ]

    def test_two_shard_transaction_chains_match(self):
        config = WeaverConfig(num_shards=2, num_gatekeepers=1)
        direct_chain = self.chain_shape(
            Weaver(WeaverConfig(num_shards=2, num_gatekeepers=1))
        )
        with ProcessWeaver(config) as process:
            process_chain = self.chain_shape(process)
        # Same spans, same nodes: the worker-side shard.enqueue and
        # shard.apply spans crossed the wire under the original trace id.
        assert sorted(process_chain) == sorted(direct_chain)
        kinds = [kind for kind, _node in process_chain]
        assert kinds[:3] == ["client.submit", "gatekeeper.stamp",
                             "store.commit"]
        assert kinds.count("shard.enqueue") == 2
        assert kinds.count("shard.apply") == 2
        for kind, node in process_chain:
            if kind in ("shard.enqueue", "shard.apply"):
                assert node in ("shard0", "shard1")


class TestChaosKillAndRecover:
    """Satellite: the acceptance run from the issue — Zipf workload,
    SIGKILL one worker mid-run, recover, and the referee finds a clean,
    digestible history."""

    def test_zipf_workload_survives_worker_kill(self):
        config = WeaverConfig(num_shards=2, num_gatekeepers=2)
        history = History()
        tags = iter(range(10**6))
        vertices = [f"v{i}" for i in range(10)]
        sampler = ZipfSampler(len(vertices), 0.8, seed=17)

        with ProcessWeaver(config) as db:
            history.attach(db.tracer)

            def write(targets):
                tag = next(tags)
                submitted_at = time.perf_counter()
                tx = db.begin_transaction()
                for target in targets:
                    tx.set_property(target, "w", tag)
                ts = tx.commit()
                db.tracer.emit(
                    tx.trace_id, "txn.commit", node="client",
                    at=time.perf_counter(),
                    tag=tag, ts=ts,
                    writes=tuple((t, tag) for t in targets),
                    submitted_at=submitted_at,
                )

            def read(target):
                query_id = next(tags)
                submitted_at = time.perf_counter()
                result = db.run_program(GetNode(), target)
                observed = result.value["properties"].get("w")
                db.tracer.emit(
                    db.tracer.next_trace_id(), "program.read",
                    node="client", query_id=query_id,
                    at=time.perf_counter(),
                    ts=result.timestamp,
                    reads=((target, observed),),
                    submitted_at=submitted_at,
                )

            # Setup: every vertex exists and carries an initial tag.
            for vertex in vertices:
                tag = next(tags)
                submitted_at = time.perf_counter()
                tx = db.begin_transaction()
                tx.create_vertex(vertex)
                tx.set_property(vertex, "w", tag)
                ts = tx.commit()
                db.tracer.emit(
                    tx.trace_id, "txn.commit", node="client",
                    at=time.perf_counter(),
                    tag=tag, ts=ts, writes=((vertex, tag),),
                    submitted_at=submitted_at,
                )
            db.drain()

            def mix(rounds):
                for i in range(rounds):
                    first = vertices[sampler.sample()]
                    second = vertices[sampler.sample()]
                    write([first] if first == second else [first, second])
                    if i % 3 == 2:
                        read(vertices[sampler.sample()])

            mix(15)
            db.kill_shard_worker(0)
            db.recover_shard(0)
            mix(15)
            db.drain()
            read(vertices[0])
            read(vertices[1])

            assert db.recoveries == 1
            checker = HistoryChecker(history, decided_order(db.oracle))
            violations = checker.check()

        assert violations == [], "\n".join(str(v) for v in violations)
        assert len(history.commits) >= 30
        assert len(history.reads) >= 7
        assert set(history.applies)  # worker apply spans crossed the wire
        digest = history.digest()
        assert len(digest) == 64
        assert digest == history.digest()  # stable over re-rendering


class TestShuffledSpanDelivery:
    """Satellite: span arrival order is a transport artifact, not a
    semantic one.  Worker spans ride reply frames and can interleave
    arbitrarily with client-side spans, so the history must reconstruct
    the same record multiset — same digest, same verdict — from any
    permutation of a real cross-process run's span stream."""

    def test_replayed_shuffled_spans_reproduce_history(self):
        config = WeaverConfig(num_shards=2, num_gatekeepers=2)
        history = History()
        recorded = []
        tags = iter(range(10**6))
        vertices = [f"s{i}" for i in range(6)]
        sampler = ZipfSampler(len(vertices), 0.8, seed=23)

        with ProcessWeaver(config) as db:
            db.tracer.add_sink(recorded.append)
            history.attach(db.tracer)

            def write(targets):
                tag = next(tags)
                submitted_at = time.perf_counter()
                tx = db.begin_transaction()
                for target in targets:
                    tx.set_property(target, "w", tag)
                ts = tx.commit()
                db.tracer.emit(
                    tx.trace_id, "txn.commit", node="client",
                    at=time.perf_counter(),
                    tag=tag, ts=ts,
                    writes=tuple((t, tag) for t in targets),
                    submitted_at=submitted_at,
                )

            def read(target):
                query_id = next(tags)
                submitted_at = time.perf_counter()
                result = db.run_program(GetNode(), target)
                observed = result.value["properties"].get("w")
                db.tracer.emit(
                    db.tracer.next_trace_id(), "program.read",
                    node="client", query_id=query_id,
                    at=time.perf_counter(),
                    ts=result.timestamp,
                    reads=((target, observed),),
                    submitted_at=submitted_at,
                )

            for vertex in vertices:
                tag = next(tags)
                submitted_at = time.perf_counter()
                tx = db.begin_transaction()
                tx.create_vertex(vertex)
                tx.set_property(vertex, "w", tag)
                ts = tx.commit()
                db.tracer.emit(
                    tx.trace_id, "txn.commit", node="client",
                    at=time.perf_counter(),
                    tag=tag, ts=ts, writes=((vertex, tag),),
                    submitted_at=submitted_at,
                )
            db.drain()

            for i in range(8):
                first = vertices[sampler.sample()]
                second = vertices[sampler.sample()]
                write([first] if first == second else [first, second])
                if i % 3 == 2:
                    read(vertices[sampler.sample()])
            # A kill/recover mid-run puts applies from two shard epochs
            # in the stream — the hard case for order reconstruction.
            db.kill_shard_worker(1)
            db.recover_shard(1)
            for _ in range(4):
                write([vertices[sampler.sample()]])
            db.drain()
            read(vertices[0])

            compare = decided_order(db.oracle)
            base_digest = history.digest()
            assert HistoryChecker(history, compare).check() == []
            assert any(s.kind == "shard.apply" for s in recorded)

            rng = random.Random(7)
            for _ in range(3):
                shuffled = list(recorded)
                rng.shuffle(shuffled)
                replayed = History()
                online = OnlineChecker(compare)
                for span in shuffled:
                    replayed.consume(span)
                    online.consume(span)
                assert replayed.digest() == base_digest
                assert online.digest() == base_digest
                assert HistoryChecker(replayed, compare).check() == []
                assert online.finalize() == []
