"""Crash recovery on the durable store: kill -9, reopen, resume.

The differential suite from the issue: a :class:`ProcessWeaver` backed
by the SQLite/WAL store loses a shard worker to SIGKILL mid-workload;
the replacement worker reopens the database itself (no dict snapshot
crosses the fork) and the run must finish with clean
:class:`HistoryChecker` / :class:`OnlineChecker` verdicts and matching
digests across the recovery epoch boundary.
"""

import time

import pytest

from repro.cluster.process import ProcessWeaver
from repro.db import WeaverConfig
from repro.programs.library import GetNode
from repro.verify.history import History, HistoryChecker, decided_order
from repro.verify.online import OnlineChecker
from repro.workloads.chaos import run_soak
from repro.workloads.contention import ZipfSampler


@pytest.fixture
def sqlite_config(tmp_path):
    return WeaverConfig(
        num_shards=2,
        num_gatekeepers=2,
        store_backend="sqlite",
        store_path=str(tmp_path / "weaver.db"),
        store_cache_bytes=1 << 20,
    )


class TestKillNineReopenResume:
    def test_worker_kill_recovers_from_database(self, sqlite_config):
        history = History()
        tags = iter(range(10**6))
        vertices = [f"v{i}" for i in range(10)]
        sampler = ZipfSampler(len(vertices), 0.8, seed=41)

        with ProcessWeaver(sqlite_config) as db:
            history.attach(db.tracer)
            checker = OnlineChecker(
                decided_order(db.oracle), registry=db.metrics
            )
            checker.attach(db.tracer)

            def write(targets):
                tag = next(tags)
                submitted_at = time.perf_counter()
                tx = db.begin_transaction()
                for target in targets:
                    tx.set_property(target, "w", tag)
                ts = tx.commit()
                db.tracer.emit(
                    tx.trace_id, "txn.commit", node="client",
                    at=time.perf_counter(), tag=tag, ts=ts,
                    writes=tuple((t, tag) for t in targets),
                    submitted_at=submitted_at,
                )

            def read(target):
                query_id = next(tags)
                submitted_at = time.perf_counter()
                result = db.run_program(GetNode(), target)
                observed = result.value["properties"].get("w")
                db.tracer.emit(
                    db.tracer.next_trace_id(), "program.read",
                    node="client", query_id=query_id,
                    at=time.perf_counter(), ts=result.timestamp,
                    reads=((target, observed),),
                    submitted_at=submitted_at,
                )

            for vertex in vertices:
                tag = next(tags)
                submitted_at = time.perf_counter()
                tx = db.begin_transaction()
                tx.create_vertex(vertex)
                tx.set_property(vertex, "w", tag)
                ts = tx.commit()
                db.tracer.emit(
                    tx.trace_id, "txn.commit", node="client",
                    at=time.perf_counter(), tag=tag, ts=ts,
                    writes=((vertex, tag),), submitted_at=submitted_at,
                )
            db.drain()

            def mix(rounds):
                for i in range(rounds):
                    first = vertices[sampler.sample()]
                    second = vertices[sampler.sample()]
                    write([first] if first == second else [first, second])
                    if i % 3 == 2:
                        read(vertices[sampler.sample()])

            mix(12)
            db.kill_shard_worker(0)
            db.recover_shard(0)
            mix(12)
            db.drain()
            # Reads that cross the epoch boundary: every vertex, both
            # partitions, after the replacement reopened the database.
            for vertex in vertices:
                read(vertex)

            assert db.recoveries == 1
            online_violations = checker.finalize()
            offline = HistoryChecker(history, decided_order(db.oracle))
            offline_violations = offline.check()
            online_digest = checker.digest()

        assert offline_violations == [], "\n".join(
            str(v) for v in offline_violations
        )
        assert online_violations == [], "\n".join(
            str(v) for v in online_violations
        )
        # Digest parity across the recovery epoch boundary: the online
        # and offline referees saw the same record multiset.
        assert online_digest == history.digest()
        assert len(history.commits) >= 25
        assert len(history.reads) >= 10

    def test_recovered_worker_serves_pre_crash_writes(self, sqlite_config):
        """The reopened partition is the pre-crash one: a value written
        before the kill is read after recovery with no re-write."""
        with ProcessWeaver(sqlite_config) as db:
            tx = db.begin_transaction()
            tx.create_vertex("a")
            tx.set_property("a", "w", 7)
            tx.commit()
            tx = db.begin_transaction()
            tx.create_vertex("b")
            tx.set_property("b", "w", 8)
            tx.commit()
            db.drain()
            shard_of_a = db._shard_of("a")
            db.kill_shard_worker(shard_of_a)
            db.recover_shard(shard_of_a)
            result = db.run_program(GetNode(), "a")
            assert result.value["properties"]["w"] == 7
            result = db.run_program(GetNode(), "b")
            assert result.value["properties"]["w"] == 8


class TestSqliteSoak:
    """Acceptance: the soak passes both checkers on the durable store
    with a dataset larger than the configured page-cache budget."""

    def test_process_soak_on_sqlite_with_tiny_cache(self):
        report = run_soak(
            seed=5,
            transport="process",
            chunks=6,
            num_vertices=16,
            crash_every=3,
            store="sqlite",
            store_cache_bytes=2048,
        )
        assert report.store == "sqlite"
        assert report.ok, (
            report.online_violations,
            report.offline_violations,
            report.parity_failures,
        )
        assert report.recoveries >= 1
        assert report.committed > 0
        # Dataset larger than the cache budget: the store actually paged.
        assert report.metrics.get("store.page_cache_evictions", 0) > 0
        assert report.metrics.get("store.commits", 0) > 0

    def test_sim_soak_on_sqlite(self):
        report = run_soak(
            seed=9,
            transport="sim",
            chunks=2,
            store="sqlite",
            store_cache_bytes=4096,
        )
        assert report.store == "sqlite"
        assert report.ok
        assert report.metrics.get("store.commits", 0) > 0
