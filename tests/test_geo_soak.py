"""Satellite: the chunked soak transplanted into the geo cluster.

``run_geo_soak`` drives :func:`~repro.workloads.chaos.run_soak`-style
chunked Zipf traffic across two regions while the chaos layer injects
message faults, per-chunk server crashes, and a full region partition
across the middle chunks.  The referee (History + OnlineChecker) runs
throughout, and their digests must match after every chunk — on the
simulator and on the real multiprocess transport.
"""

from repro.workloads.geo import run_geo_soak


class TestGeoSoakSim:
    def test_soak_with_crashes_and_region_partition(self):
        report = run_geo_soak(3, transport="sim", chunks=4)
        assert report.ok, (
            report.online_violations, report.offline_violations,
            report.parity_failures,
        )
        # The chaos actually happened: servers died and recovered while
        # regions 0 and 1 were partitioned across the middle chunks.
        assert report.recoveries >= 1
        assert report.metrics.get("network.faults.partition", 0) > 0
        # Digest parity held after every chunk and at the end.
        assert report.parity_checks == report.chunks + 1
        assert report.parity_failures == 0
        assert report.digest == report.offline_digest
        assert report.committed > 0
        assert report.reads_completed > 0

    def test_soak_is_deterministic_per_seed(self):
        first = run_geo_soak(5, transport="sim", chunks=2)
        second = run_geo_soak(5, transport="sim", chunks=2)
        assert first.ok and second.ok
        assert first.digest == second.digest
        assert first.committed == second.committed


class TestGeoSoakProcess:
    def test_soak_on_the_process_transport(self):
        report = run_geo_soak(3, transport="process", chunks=4)
        assert report.ok, (
            report.online_violations, report.offline_violations,
            report.parity_failures,
        )
        assert report.recoveries >= 1
        assert report.parity_failures == 0
        assert report.digest == report.offline_digest
