"""The client API: helpers and retry behaviour."""

import random

import pytest

from repro.db import Weaver, WeaverClient, WeaverConfig
from repro.errors import TransactionAborted


class TestConveniences:
    def test_create_vertex_and_get_node(self, client):
        client.create_vertex("a")
        node = client.get_node("a")
        assert node["handle"] == "a"
        assert node["out_degree"] == 0

    def test_create_edge_and_get_edges(self, client):
        client.create_vertex("a")
        client.create_vertex("b")
        handle = client.create_edge("a", "b")
        edges = client.get_edges("a")
        assert [e["handle"] for e in edges] == [handle]
        assert edges[0]["nbr"] == "b"

    def test_count_edges(self, triangle):
        assert triangle.count_edges("a") == 2
        assert triangle.count_edges("b") == 1

    def test_get_edges_filtered_by_property(self, client):
        client.create_vertex("a")
        client.create_vertex("b")
        client.create_vertex("c")

        def build(tx):
            e1 = tx.create_edge("a", "b")
            tx.set_edge_property("a", e1, "follows", True)
            tx.create_edge("a", "c")

        client.transact(build)
        assert len(client.get_edges("a", edge_prop="follows")) == 1
        assert client.count_edges("a", edge_prop="follows") == 1

    def test_delete_vertex(self, client):
        client.create_vertex("a")
        client.delete_vertex("a")
        from repro.programs import GetNode

        assert client.db.run_program(GetNode(), "a").results == []

    def test_set_property(self, client):
        client.create_vertex("a")
        client.set_property("a", "name", "alice")
        assert client.get_node("a")["properties"]["name"] == "alice"


class TestTraversals:
    def test_traverse_visits_in_bfs_order(self, triangle):
        assert triangle.traverse("a") == ["a", "b", "c"]

    def test_traverse_max_depth(self, triangle):
        assert triangle.traverse("a", max_depth=0) == ["a"]

    def test_reachable_true_false(self, triangle):
        assert triangle.reachable("a", "c")
        client = triangle
        client.create_vertex("island")
        assert not client.reachable("a", "island")

    def test_shortest_path_length(self, triangle):
        assert triangle.shortest_path_length("a", "c") == 1
        assert triangle.shortest_path_length("b", "a") == 2

    def test_shortest_path_unreachable_is_none(self, triangle):
        triangle.create_vertex("island")
        assert triangle.shortest_path_length("a", "island") is None

    def test_find_path(self, triangle):
        path = triangle.find_path("b", "a")
        assert path == ["b", "c", "a"]

    def test_find_path_none(self, triangle):
        triangle.create_vertex("island")
        assert triangle.find_path("a", "island") is None

    def test_traverse_with_edge_property(self, client):
        client.create_vertex("a")
        client.create_vertex("b")
        client.create_vertex("c")

        def build(tx):
            e1 = tx.create_edge("a", "b")
            tx.set_edge_property("a", e1, "colored", True)
            tx.create_edge("a", "c")

        client.transact(build)
        assert client.traverse("a", edge_prop="colored") == ["a", "b"]

    def test_clustering_coefficient_triangle(self, client):
        # Complete directed triangle: coefficient 1.0 at every vertex.
        with client.transaction() as tx:
            for v in ("x", "y", "z"):
                tx.create_vertex(v)
            for src in ("x", "y", "z"):
                for dst in ("x", "y", "z"):
                    if src != dst:
                        tx.create_edge(src, dst)
        assert client.clustering_coefficient("x") == pytest.approx(1.0)

    def test_clustering_coefficient_star(self, client):
        # Hub with unconnected leaves: coefficient 0.
        with client.transaction() as tx:
            tx.create_vertex("hub")
            for i in range(3):
                leaf = tx.create_vertex(f"leaf{i}")
                tx.create_edge("hub", leaf)
        assert client.clustering_coefficient("hub") == 0.0

    def test_clustering_coefficient_degree_one(self, client):
        with client.transaction() as tx:
            tx.create_vertex("a")
            tx.create_vertex("b")
            tx.create_edge("a", "b")
        assert client.clustering_coefficient("a") == 0.0


class TestTransactRetry:
    def test_transact_returns_value(self, client):
        assert client.transact(lambda tx: tx.create_vertex("a")) == "a"

    def test_transact_retries_conflicts(self, client):
        client.create_vertex("a")
        attempts = []

        def racy(tx):
            attempts.append(1)
            tx.set_property("a", "k", len(attempts))
            if len(attempts) == 1:
                # A competing committed write forces an OCC conflict.
                other = client.db.begin_transaction()
                other.set_property("a", "k", 0)
                other.commit()

        client.transact(racy)
        assert len(attempts) == 2
        assert client.get_node("a")["properties"]["k"] == 2

    def test_transact_raises_after_exhaustion(self, db):
        client = WeaverClient(db, max_retries=2)
        client.create_vertex("a")

        def always_racy(tx):
            tx.set_property("a", "k", 1)
            other = db.begin_transaction()
            other.set_property("a", "k", 0)
            other.commit()

        with pytest.raises(TransactionAborted):
            client.transact(always_racy)

    def test_unexpected_exception_aborts_open_tx(self, client):
        # fn blowing up mid-transaction must not leak an open store_tx:
        # the finally clause aborts it before the exception propagates.
        client.create_vertex("a")
        held = {}

        def boom(tx):
            held["tx"] = tx
            tx.set_property("a", "k", 1)
            raise RuntimeError("application bug")

        with pytest.raises(RuntimeError):
            client.transact(boom)
        assert not held["tx"].is_open
        # Nothing leaked: the half-done write is invisible and the store
        # accepts fresh transactions on the same keys.
        assert "k" not in client.get_node("a")["properties"]
        client.set_property("a", "k", 2)
        assert client.get_node("a")["properties"]["k"] == 2

    def test_tx_closed_after_every_retry(self, db):
        opened = []
        client = WeaverClient(db, max_retries=3)
        client.create_vertex("a")

        def always_racy(tx):
            opened.append(tx)
            tx.set_property("a", "k", 1)
            other = db.begin_transaction()
            other.set_property("a", "k", 0)
            other.commit()

        with pytest.raises(TransactionAborted):
            client.transact(always_racy)
        assert len(opened) == 3
        assert all(not tx.is_open for tx in opened)


class TestRetryBackoff:
    def make_client(self, db, **kw):
        sleeps = []
        client = WeaverClient(db, sleep=sleeps.append, **kw)
        return client, sleeps

    def racy_fn(self, db, succeed_on=None):
        attempts = []

        def fn(tx):
            attempts.append(1)
            tx.set_property("a", "k", len(attempts))
            if succeed_on is None or len(attempts) < succeed_on:
                other = db.begin_transaction()
                other.set_property("a", "k", 0)
                other.commit()

        return fn

    def test_no_backoff_before_first_attempt(self, db):
        client, sleeps = self.make_client(db)
        client.create_vertex("a")
        assert sleeps == []  # create_vertex committed on attempt one

    def test_backoff_jittered_exponential_and_capped(self, db):
        base, cap, seed = 1e-3, 4e-3, 7
        client, sleeps = self.make_client(
            db,
            max_retries=6,
            backoff_base=base,
            backoff_cap=cap,
            rng=random.Random(seed),
        )
        client.create_vertex("a")
        with pytest.raises(TransactionAborted):
            client.transact(self.racy_fn(db))
        # One sleep per retry (none before the first attempt), each drawn
        # as jitter * min(cap, base * 2^(attempt-1)).
        rng = random.Random(seed)
        expected = [
            rng.random() * min(cap, base * (2 ** (attempt - 1)))
            for attempt in range(1, 6)
        ]
        assert sleeps == pytest.approx(expected)
        assert all(s <= cap for s in sleeps)

    def test_backoff_deterministic_under_injected_rng(self, db):
        def run():
            local = Weaver(WeaverConfig(num_gatekeepers=2, num_shards=2))
            client, sleeps = self.make_client(
                local, max_retries=5, rng=random.Random(42)
            )
            client.create_vertex("a")
            with pytest.raises(TransactionAborted):
                client.transact(self.racy_fn(local))
            return sleeps

        assert run() == run()

    def test_success_after_retries_stops_backing_off(self, db):
        client, sleeps = self.make_client(db, rng=random.Random(3))
        client.create_vertex("a")
        client.transact(self.racy_fn(db, succeed_on=3))
        assert len(sleeps) == 2  # retries 2 and 3 only
        assert client.get_node("a")["properties"]["k"] == 3


class TestRenderBlock:
    def test_render_block(self, client):
        with client.transaction() as tx:
            tx.create_vertex("blk")
            tx.set_property("blk", "height", 7)
            for i in range(3):
                tx.create_vertex(f"t{i}")
                edge = tx.create_edge("blk", f"t{i}")
                tx.set_edge_property("blk", edge, "tx", True)
        block = client.render_block("blk")
        assert block["n_tx"] == 3
        assert block["header"] == {"height": 7}
        assert {t["tx"] for t in block["transactions"]} == {"t0", "t1", "t2"}
