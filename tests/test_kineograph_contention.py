"""The Kineograph baseline and the contention workload."""

import pytest

from repro.baselines.kineograph import Kineograph
from repro.db import Weaver, WeaverClient, WeaverConfig
from repro.workloads.contention import (
    ZipfSampler,
    run_contention,
)


class TestKineograph:
    def test_updates_invisible_until_epoch(self):
        kg = Kineograph(epoch_interval=10.0)
        kg.update(("create_vertex", "a"), now=1.0)
        assert kg.get_node("a", now=5.0) is None        # same epoch: stale
        assert kg.get_node("a", now=11.0) is not None   # epoch turned

    def test_snapshot_is_consistent_batch(self):
        # Two updates in the same epoch become visible together.
        kg = Kineograph(epoch_interval=10.0)
        kg.update(("create_vertex", "a"), now=1.0)
        kg.update(("create_vertex", "b"), now=2.0)
        kg.update(("create_edge", "e", "a", "b"), now=3.0)
        assert not kg.reachable("a", "b", now=9.0)
        assert kg.reachable("a", "b", now=10.5)

    def test_updates_straddling_boundary_split_correctly(self):
        kg = Kineograph(epoch_interval=10.0)
        kg.update(("create_vertex", "early"), now=9.0)
        kg.update(("create_vertex", "late"), now=10.5)
        kg.force_epoch(now=10.6)
        assert kg.get_node("early", now=10.6) is not None
        assert kg.get_node("late", now=10.6) is None
        assert kg.get_node("late", now=20.1) is not None

    def test_delete_and_properties(self):
        kg = Kineograph(epoch_interval=1.0)
        kg.update(("create_vertex", "a"), now=0.1)
        kg.update(("set_vertex_property", "a", "k", 7), now=0.2)
        node = kg.get_node("a", now=1.5)
        assert node["properties"] == {"k": 7}
        kg.update(("delete_vertex", "a"), now=1.6)
        assert kg.get_node("a", now=2.5) is None

    def test_visibility_lag_bounded_by_interval(self):
        kg = Kineograph(epoch_interval=10.0)
        assert kg.visibility_lag(0.0) == pytest.approx(10.0)
        assert kg.visibility_lag(9.9) == pytest.approx(0.1)
        assert 0 < kg.visibility_lag(123.4) <= 10.0

    def test_weaver_reads_own_writes_kineograph_does_not(self):
        """The headline contrast: read-your-writes latency."""
        db = Weaver(WeaverConfig(num_gatekeepers=2, num_shards=2))
        client = WeaverClient(db)
        client.create_vertex("a")
        assert client.get_node("a")["handle"] == "a"  # immediately
        kg = Kineograph(epoch_interval=10.0)
        kg.update(("create_vertex", "a"), now=0.5)
        assert kg.get_node("a", now=0.5001) is None   # stale for ~10 s

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            Kineograph(epoch_interval=0)

    def test_unknown_op_rejected(self):
        kg = Kineograph(epoch_interval=1.0)
        kg.update(("explode",), now=0.1)
        with pytest.raises(ValueError):
            kg.force_epoch(now=1.5)


class TestZipfSampler:
    def test_rank_zero_is_hottest(self):
        sampler = ZipfSampler(100, s=1.2, seed=1)
        counts = {}
        for _ in range(5000):
            rank = sampler.sample()
            counts[rank] = counts.get(rank, 0) + 1
        assert counts[0] == max(counts.values())

    def test_zero_skew_is_roughly_uniform(self):
        sampler = ZipfSampler(10, s=0.0, seed=2)
        counts = [0] * 10
        for _ in range(10_000):
            counts[sampler.sample()] += 1
        assert max(counts) < 2 * min(counts)

    def test_samples_in_range(self):
        sampler = ZipfSampler(5, s=2.0, seed=3)
        assert all(0 <= sampler.sample() < 5 for _ in range(200))

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfSampler(0, 1.0)
        with pytest.raises(ValueError):
            ZipfSampler(10, -1.0)


class TestContentionStudy:
    @pytest.fixture
    def populated(self):
        db = Weaver(WeaverConfig(num_gatekeepers=2, num_shards=2))
        client = WeaverClient(db)
        names = [f"v{i}" for i in range(40)]
        with client.transaction() as tx:
            for name in names:
                tx.create_vertex(name)
        return db, names

    def test_abort_rate_grows_with_skew(self, populated):
        db, names = populated
        uniform = run_contention(db, names, skew=0.0, rounds=60, seed=4)
        skewed = run_contention(db, names, skew=2.5, rounds=60, seed=4)
        assert skewed.abort_rate > uniform.abort_rate

    def test_commits_plus_aborts_equals_attempts(self, populated):
        db, names = populated
        report = run_contention(db, names, skew=1.0, rounds=30, seed=5)
        assert report.commits + report.aborts == report.attempts

    def test_committed_increments_never_lost(self, populated):
        db, names = populated
        from repro.db import WeaverClient

        report = run_contention(db, names, skew=1.5, rounds=40, seed=6)
        client = WeaverClient(db)
        total = sum(
            client.get_node(name)["properties"].get("n", 0)
            for name in names
        )
        assert total == report.commits
