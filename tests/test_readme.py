"""The README's code blocks must actually run."""

import re
from pathlib import Path

import pytest

README = Path(__file__).resolve().parent.parent / "README.md"


def python_blocks():
    text = README.read_text()
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


def test_readme_exists_and_has_code():
    assert README.exists()
    assert python_blocks(), "README should show runnable code"


@pytest.mark.parametrize("index", range(len(python_blocks())))
def test_readme_python_block_executes(index):
    block = python_blocks()[index]
    exec(compile(block, f"README.md[block {index}]", "exec"), {})


def test_readme_mentions_every_deliverable():
    text = README.read_text().lower()
    for needle in (
        "refinable timestamps",
        "examples/",
        "pytest tests/",
        "benchmarks",
        "experiments.md",
        "design.md",
    ):
        assert needle in text, f"README missing {needle!r}"
