"""Integration tests of the experiment harness: every figure's shape
holds at tiny scale."""

import pytest

from repro.bench import harness
from repro.sim.clock import MSEC, USEC


class TestFig7:
    def test_coingraph_faster_and_latency_grows_with_height(self):
        result = harness.experiment_fig7(
            heights=(1_000, 200_000, 350_000), functional_scale=0.01
        )
        rows = result.rows()
        assert result.functional_blocks_checked == 3
        latencies = [cg for _, _, cg, _, _ in rows]
        assert latencies == sorted(latencies)
        # The paper's headline: ~8x faster at block 350,000.
        assert 4 <= result.speedup_at_max_height <= 16


class TestFig8:
    def test_throughput_falls_with_block_height(self):
        result = harness.experiment_fig8(
            base_heights=(1_000, 200_000, 350_000),
            queries_per_point=50,
            clients=8,
        )
        rows = result.rows()
        throughputs = [t for _, t, _ in rows]
        assert throughputs[0] > throughputs[-1]

    def test_vertex_read_rate_within_band(self):
        result = harness.experiment_fig8(
            base_heights=(200_000, 350_000), queries_per_point=50
        )
        for _, _, reads_per_s in result.rows():
            assert reads_per_s > 1_000  # sustained multi-k reads/s


class TestFig9:
    @pytest.fixture(scope="class")
    def tao_run(self):
        return harness.experiment_fig9(
            0.998, total_ops=3000, num_vertices=150, functional_ops=200
        )

    @pytest.fixture(scope="class")
    def mixed_run(self):
        return harness.experiment_fig9(
            0.75, 45, 50, total_ops=3000, num_vertices=150,
            functional_ops=200,
        )

    def test_weaver_beats_titan_on_tao_mix(self, tao_run):
        # Paper: 10.9x.  Accept the right order of magnitude.
        assert 5 <= tao_run.speedup <= 25

    def test_modest_win_on_mixed_workload(self, mixed_run):
        # Paper: 1.5x.
        assert 1.0 <= mixed_run.speedup <= 3.5

    def test_titan_throughput_flat_across_mixes(self, tao_run, mixed_run):
        ratio = tao_run.titan_throughput / mixed_run.titan_throughput
        assert 0.8 <= ratio <= 1.2

    def test_weaver_throughput_falls_with_writes(self, tao_run, mixed_run):
        assert mixed_run.weaver_throughput < tao_run.weaver_throughput

    def test_reactive_fraction_small_and_grows_with_writes(
        self, tao_run, mixed_run
    ):
        assert tao_run.reactive_fraction < 0.05
        assert mixed_run.reactive_fraction >= tao_run.reactive_fraction


class TestFig10:
    def test_latency_cdf_shapes(self):
        runs = harness.experiment_fig10(total_ops=2000)
        tao = runs[0.998]
        # Weaver reads < Weaver writes < Titan (Fig 10's ordering).
        assert (
            tao.weaver_read_latencies.mean
            < tao.weaver_write_latencies.mean
            < tao.titan_latencies.mean
        )

    def test_weaver_lower_latency_where_paper_claims(self):
        # Fig 10's caption: "significantly lower latency than Titan for
        # all reads and most writes" — so: every quantile on the
        # read-heavy mix, and the median on the mixed workload (the
        # write tail may exceed Titan's).
        runs = harness.experiment_fig10(total_ops=2000)
        tao, mixed = runs[0.998], runs[0.75]
        for q in (50, 90, 99):
            assert tao.weaver_latencies.quantile(
                q
            ) < tao.titan_latencies.quantile(q)
        assert mixed.weaver_latencies.median < mixed.titan_latencies.median
        for q in (50, 90, 99):
            assert mixed.weaver_read_latencies.quantile(
                q
            ) < mixed.titan_latencies.quantile(q)


class TestFig11:
    def test_weaver_beats_both_graphlab_engines(self):
        result = harness.experiment_fig11(num_vertices=150, num_queries=12)
        assert result.answers_agree
        # Paper: 4.3x vs async, 9.4x vs sync.
        assert 1.5 <= result.speedup_vs_async <= 12
        assert 3 <= result.speedup_vs_sync <= 30
        assert result.speedup_vs_sync > result.speedup_vs_async


class TestScaling:
    def test_fig12_linear_in_gatekeepers(self):
        result = harness.experiment_fig12(
            gatekeeper_counts=(1, 2, 4, 6), ops=4000, clients=64
        )
        assert result.linearity > 0.85
        throughputs = [t for _, t in result.rows()]
        assert throughputs == sorted(throughputs)

    def test_fig13_linear_in_shards(self):
        result = harness.experiment_fig13(
            shard_counts=(1, 3, 6, 9), ops=1500, clients=48
        )
        assert result.linearity > 0.85
        throughputs = [t for _, t in result.rows()]
        assert throughputs == sorted(throughputs)


class TestFig14:
    def test_coordination_tradeoff(self):
        result = harness.experiment_fig14(
            taus=(10 * USEC, 1 * MSEC, 100 * MSEC),
            num_txs=800,
        )
        rows = result.rows()
        announces = [a for _, a, _ in rows]
        oracle = [o for _, _, o in rows]
        # Announce overhead falls with tau; oracle traffic rises.
        assert announces[0] > announces[-1]
        assert oracle[0] < oracle[-1]
        # At the fast-announce extreme the oracle is nearly idle.
        assert oracle[0] < 0.2


class TestAblations:
    def test_a1_caching_saves_reads(self):
        result = harness.ablation_caching(
            num_blocks=5, queries=60, write_every=20
        )
        assert result.hit_rate > 0.3
        assert result.reads_saved_fraction > 0.3
        assert result.invalidations > 0

    def test_a2_partitioning_ldg_beats_hash(self):
        result = harness.ablation_partitioning(num_vertices=400)
        assert result.cut_of("ldg") < result.cut_of("hash")
        assert result.cut_of("restream") <= result.cut_of("ldg")

    def test_a3_oracle_cache_saves_messages(self):
        result = harness.ablation_oracle_cache(num_pairs=100, reuse=4)
        assert result.messages_saved_fraction > 0.5
        assert result.cache_hits > 0

    def test_a4_nop_tradeoff(self):
        result = harness.ablation_nop_period(
            periods=(10 * USEC, 10 * MSEC)
        )
        rows = result.rows()
        # Longer period: more delay, less heartbeat traffic.
        assert rows[0][1] < rows[1][1]
        assert rows[0][2] > rows[1][2]
