"""The analytics node programs: communities, components, triangles,
weighted paths."""

import pytest

from repro.core.vclock import VectorClock
from repro.graph.mvgraph import MultiVersionGraph
from repro.programs import (
    ComponentSize,
    DegreeHistogram,
    KHopNeighborhood,
    LabelPropagation,
    ProgramExecutor,
    PushPageRank,
    TriangleCount,
    WeightedShortestPath,
    params,
)


@pytest.fixture
def world():
    """Two weak components: {a,b,c} cyclic, {x,y} chain; a->b->c->a,
    plus a weighted pair of routes a -> c (direct, heavy) vs a -> b -> c
    (light)."""
    clock = VectorClock(1, 0)
    graph = MultiVersionGraph()
    for v in ("a", "b", "c", "x", "y"):
        graph.create_vertex(v, clock.tick())
    graph.create_edge("ab", "a", "b", clock.tick())
    graph.create_edge("bc", "b", "c", clock.tick())
    graph.create_edge("ca", "c", "a", clock.tick())
    graph.create_edge("ac", "a", "c", clock.tick())
    graph.create_edge("xy", "x", "y", clock.tick())
    graph.set_edge_property("a", "ab", "weight", 1.0, clock.tick())
    graph.set_edge_property("b", "bc", "weight", 1.0, clock.tick())
    graph.set_edge_property("a", "ac", "weight", 5.0, clock.tick())
    ts = clock.tick()
    view = graph.at(ts)

    def resolve(handle):
        return view.vertex(handle) if view.has_vertex(handle) else None

    return resolve, ts


def run(program, start, start_params, world):
    resolve, ts = world
    return ProgramExecutor().execute(
        program, [(start, start_params)], resolve, ts
    )


class TestKHop:
    def test_depths_recorded(self, world):
        result = run(KHopNeighborhood(), "a", params(k=1, depth=0), world)
        depths = dict(result.results)
        assert depths["a"] == 0
        assert depths["b"] == 1 and depths["c"] == 1
        assert "x" not in depths

    def test_k_zero_is_just_start(self, world):
        result = run(KHopNeighborhood(), "a", params(k=0, depth=0), world)
        assert dict(result.results) == {"a": 0}

    def test_shorter_depth_wins_on_revisit(self, world):
        result = run(KHopNeighborhood(), "a", params(k=3, depth=0), world)
        depths = dict(result.results)
        assert depths["c"] == 1  # via the direct a -> c edge


class TestLabelPropagation:
    def test_cycle_converges_to_minimum(self, world):
        result = run(LabelPropagation(), "c", None, world)
        labels = LabelPropagation.final_labels(result)
        # 'a' is the lexicographic minimum in the cycle a->b->c->a.
        assert labels["a"] == labels["b"] == labels["c"] == "a"

    def test_other_component_untouched(self, world):
        result = run(LabelPropagation(), "a", None, world)
        labels = LabelPropagation.final_labels(result)
        assert "x" not in labels and "y" not in labels


class TestComponentSize:
    def test_cycle_component(self, world):
        result = run(ComponentSize(), "a", None, world)
        assert ComponentSize.size(result) == 3

    def test_chain_component(self, world):
        result = run(ComponentSize(), "x", None, world)
        assert ComponentSize.size(result) == 2


class TestTriangleCount:
    def test_triangle_through_a(self, world):
        # a's neighbours {b, c}; b -> c closes a directed triangle.
        result = run(TriangleCount(), "a", params(phase="center"), world)
        assert TriangleCount.total(result) == 1

    def test_no_triangles_on_chain(self, world):
        result = run(TriangleCount(), "x", params(phase="center"), world)
        assert TriangleCount.total(result) == 0


class TestWeightedShortestPath:
    def test_prefers_light_two_hop_route(self, world):
        result = run(
            WeightedShortestPath(),
            "a",
            params(target="c", dist=0.0),
            world,
        )
        assert WeightedShortestPath.distance(result) == pytest.approx(2.0)

    def test_unreachable_is_none(self, world):
        result = run(
            WeightedShortestPath(),
            "x",
            params(target="a", dist=0.0),
            world,
        )
        assert WeightedShortestPath.distance(result) is None

    def test_default_weight_is_one(self, world):
        result = run(
            WeightedShortestPath(),
            "x",
            params(target="y", dist=0.0),
            world,
        )
        assert WeightedShortestPath.distance(result) == pytest.approx(1.0)


class TestDegreeHistogram:
    def test_histogram_of_component(self, world):
        result = run(DegreeHistogram(), "a", params(k=None, depth=0), world)
        hist = DegreeHistogram.histogram(result)
        # a has out-degree 2; b and c have out-degree 1.
        assert hist == {2: 1, 1: 2}

    def test_depth_limited(self, world):
        result = run(DegreeHistogram(), "a", params(k=0, depth=0), world)
        assert DegreeHistogram.histogram(result) == {2: 1}


class TestPushPageRank:
    def test_mass_is_conserved(self, world):
        result = run(PushPageRank(), "a", params(mass=1.0), world)
        scores = PushPageRank.scores(result)
        # Pushed mass either landed as rank or remains as sub-epsilon
        # residuals; with epsilon=1e-4 the total is within a few percent.
        assert sum(scores.values()) == pytest.approx(1.0, abs=0.05)

    def test_seed_scores_highest_from_itself(self, world):
        result = run(PushPageRank(), "a", params(mass=1.0), world)
        scores = PushPageRank.scores(result)
        assert scores["a"] == max(scores.values())

    def test_unreached_component_has_no_score(self, world):
        result = run(PushPageRank(), "a", params(mass=1.0), world)
        scores = PushPageRank.scores(result)
        assert "x" not in scores

    def test_dangling_vertex_keeps_mass(self, world):
        result = run(PushPageRank(), "y", params(mass=1.0), world)
        scores = PushPageRank.scores(result)
        assert scores == {"y": pytest.approx(1.0)}

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            PushPageRank(damping=1.5)
        with pytest.raises(ValueError):
            PushPageRank(epsilon=0)


class TestEndToEnd:
    def test_analytics_on_live_database(self, triangle):
        from repro.programs import ComponentSize as CS

        db = triangle.db
        result = db.run_program(CS(), "a")
        assert CS.size(result) == 3
