"""Coordination accounting: one client request, one oracle message.

Fig 14's oracle-message counts (and the τ controller that feeds on
them) are only honest if ``OracleStats.messages`` moves by exactly one
per client request — no double-charging a decision as a query, no
per-replica fan-in on the chain.  These tests pin that contract, the
single-vs-replicated parity it implies, the reach-cache eviction
accounting, and the stable metric-name surface of the registry.
"""

import pytest

from repro.core.oracle import (
    EventDependencyGraph,
    Ordering,
    ReplicatedOracle,
    TimelineOracle,
)
from repro.core.vclock import VectorTimestamp
from repro.db import Weaver, WeaverClient, WeaverConfig
from repro.obs import assemble_chain
from repro.sim.clock import MSEC
from repro.workloads.chaos import run_chaos


def ts(clocks, issuer=0, epoch=0):
    return VectorTimestamp(epoch, tuple(clocks), issuer)


def drive(oracle):
    """A fixed request script; returns the client-visible stats."""
    a, b, c = ts([1, 0], 0), ts([0, 1], 1), ts([2, 0], 0)
    oracle.create_event(a)
    oracle.create_event(b)
    oracle.order(a, b)                    # concurrent: one decision
    oracle.order(a, b)                    # established: one query
    oracle.query_order(a, c)              # vc-decided: one query
    oracle.create_event(c)
    oracle.order(b, c, prefer=Ordering.AFTER)  # one more decision
    return oracle.stats


class TestOneRequestOneMessage:
    def test_decision_counts_once(self):
        oracle = TimelineOracle()
        a, b = ts([1, 0], 0), ts([0, 1], 1)
        oracle.order(a, b)
        # The old code charged a decision as a query *and* a decision
        # (messages == 2 for one request) — the Fig 14 double-count bug.
        assert oracle.stats.decisions == 1
        assert oracle.stats.queries == 0
        assert oracle.stats.messages == 1

    def test_reorder_of_established_pair_is_a_query(self):
        oracle = TimelineOracle()
        a, b = ts([1, 0], 0), ts([0, 1], 1)
        oracle.order(a, b)
        assert oracle.order(a, b) is Ordering.BEFORE
        assert oracle.stats.decisions == 1
        assert oracle.stats.queries == 1
        assert oracle.stats.messages == 2

    def test_script_totals(self):
        stats = drive(TimelineOracle())
        assert stats.events_created == 3
        assert stats.decisions == 2
        assert stats.queries == 2
        assert stats.messages == 7


class TestReplicatedParity:
    def test_client_visible_stats_match_single(self):
        single = drive(TimelineOracle())
        chained = drive(ReplicatedOracle(chain_length=3))
        for field in ("queries", "decisions", "events_created", "messages"):
            assert getattr(chained, field) == getattr(single, field), field

    def test_update_fanout_tracked_separately(self):
        oracle = ReplicatedOracle(chain_length=3)
        drive(oracle)
        # Six potentially-mutating requests (3 creates + 3 order calls —
        # order always walks the chain since it may decide) fan out to
        # all three replicas; the pure query_order read is served by one
        # reader and fans out to none.
        assert oracle.update_messages == 6 * 3
        assert oracle.stats.messages == 7

    def test_parity_survives_head_failure(self):
        oracle = ReplicatedOracle(chain_length=3)
        a, b = ts([1, 0], 0), ts([0, 1], 1)
        oracle.create_event(a)
        oracle.create_event(b)
        oracle.order(a, b)
        oracle.fail_replica(0)
        assert oracle.order(a, b) is Ordering.BEFORE
        # The new head inherited identical state: the re-ask is a query.
        assert oracle.stats.queries == 1
        assert oracle.stats.decisions == 1


class TestReachCacheEviction:
    def test_fractional_eviction_not_full_clear(self):
        graph = EventDependencyGraph()
        graph._REACH_CACHE_LIMIT = 8
        for i in range(20):
            graph._cache_reachable(((i, 0, 0), (0, 1, 1)))
        assert graph.reach_cache_size <= 8
        assert graph.stats.reach_cache_evictions >= 12
        assert graph.stats.reach_cache_clears == 0

    def test_eviction_drops_oldest_quarter(self):
        graph = EventDependencyGraph()
        graph._REACH_CACHE_LIMIT = 8
        for i in range(8):
            graph._cache_reachable(((i, 0, 0), (0, 1, 1)))
        graph._cache_reachable(((99, 0, 0), (0, 1, 1)))
        assert graph.stats.reach_cache_evictions == 2
        assert graph.reach_cache_size == 7  # 8 - 2 evicted + 1 inserted

    def test_gc_counts_a_clear(self):
        oracle = TimelineOracle()
        a, b = ts([1, 0], 0), ts([0, 1], 1)
        oracle.order(a, b)
        oracle.query_order(a, b)  # populates the positive-reach cache
        assert oracle.reach_cache_size > 0
        oracle.collect_below(ts([5, 5], 0))
        assert oracle.reach_cache_size == 0
        assert oracle.stats.reach_cache_clears >= 1


# The stable metric-name surface of a direct-mode Weaver: dashboards,
# the CLI, and the bench harness key on these dotted names.  Extending
# the list is fine (update the golden set); renaming or dropping a name
# is a breaking change to `repro stats --json` consumers.
GOLDEN_DIRECT_METRICS = frozenset({
    "gatekeeper.aborts",
    "gatekeeper.announces_received",
    "gatekeeper.announces_sent",
    "gatekeeper.commits",
    "gatekeeper.nops_sent",
    "gatekeeper.timestamps_issued",
    "oracle.bfs_expansions",
    "oracle.bfs_pruned",
    "oracle.decisions",
    "oracle.events",
    "oracle.events_collected",
    "oracle.events_created",
    "oracle.messages",
    "oracle.queries",
    "oracle.reach_cache_clears",
    "oracle.reach_cache_evictions",
    "oracle.reach_cache_hits",
    "oracle.reach_cache_size",
    "oracle.update_messages",
    "ordering.cache_entries",
    "ordering.cache_hits",
    "ordering.cache_misses",
    "ordering.cached",
    "ordering.deadline_fallback",
    "ordering.deadline_fastpath",
    "ordering.heap_compares_saved",
    "ordering.proactive",
    "ordering.reactive",
    "ordering.snapshot_memo_hits",
    "program.batch_rounds",
    "program.dedup_hits",
    "program.executions",
    "program.readiness_fastpath_hits",
    "program.readiness_storms",
    "program.round_messages_saved",
    "program.sequential_executions",
    "program.shard_batches",
    "program.snapshot_reuse_hits",
    "program.snapshots_created",
    "program.vertices_resolved",
    "shard.duplicates_discarded",
    "shard.local_tiebreaks",
    "shard.nops_applied",
    "shard.out_of_order_rejected",
    "shard.pages_in",
    "shard.pages_out",
    "shard.programs_started",
    "shard.transactions_applied",
    "shard.vertices_read",
    "store.aborts",
    "store.commits",
    "store.compaction.background_runs",
    "store.compactions",
    "store.page_cache_bytes",
    "store.page_cache_evictions",
    "store.page_cache_hits",
    "store.page_cache_misses",
    "store.records_collected",
    "store.retries",
    "store.tombstones_purged",
    "trace.spans",
    "trace.traces",
})


class TestMetricSurface:
    @pytest.fixture(scope="class")
    def db(self):
        db = Weaver(WeaverConfig(num_gatekeepers=2, num_shards=2))
        client = WeaverClient(db)
        client.transact(lambda t: (
            t.create_vertex("a"),
            t.create_vertex("b"),
            t.create_edge("a", "b"),
        ))
        return db

    def test_golden_metric_names(self, db):
        assert set(db.metrics.snapshot()) == GOLDEN_DIRECT_METRICS

    def test_snapshot_matches_hand_count(self, db):
        snap = db.metrics.snapshot()
        assert snap["oracle.messages"] == db.oracle.stats.messages
        assert snap["gatekeeper.commits"] == sum(
            gk.stats.commits for gk in db.gatekeepers
        )
        assert snap["shard.transactions_applied"] == sum(
            s.stats.transactions_applied for s in db.shards
        )

    def test_every_client_commit_traced(self, db):
        commits = [s for s in db.tracer.spans(kind="store.commit")]
        assert len(commits) == sum(gk.stats.commits for gk in db.gatekeepers)


class TestTraceChainUnderChaos:
    """Acceptance: `repro trace <id>` reconstructs the span chain."""

    @pytest.fixture(scope="class")
    def report(self):
        return run_chaos(1, duration=10 * MSEC)

    def test_committed_write_has_full_chain(self, report):
        tracer = report.tracer
        chains = [
            [s.kind for s in assemble_chain(tracer, tid)]
            for tid in tracer.trace_ids()
        ]
        committed = [c for c in chains if "txn.commit" in c]
        assert committed, "no committed write left a trace"
        expected = [
            "client.submit", "gatekeeper.stamp", "store.commit",
            "shard.enqueue", "shard.apply",
        ]
        full = [
            c for c in committed
            if [k for k in c if k in expected] [:len(expected)] == expected
        ]
        assert full, f"no chain in protocol order; saw {committed[:3]}"

    def test_some_trace_reaches_the_oracle(self, report):
        tracer = report.tracer
        assert any(
            any(s.kind == "oracle.decide" for s in assemble_chain(tracer, tid))
            for tid in tracer.trace_ids()
        ), "no trace joined an oracle decision"

    def test_latency_histograms_populated(self, report):
        assert report.tx_latency["count"] == report.committed
        assert report.read_latency["count"] == report.reads_completed
        assert 0 < report.tx_latency["p50"] <= report.tx_latency["p99"]

    def test_tau_controller_feeds_on_head_stats(self, report):
        # oracle_messages() must read the replicated head, not a replica
        # object that double- or under-counts (the TauController call
        # site regression).
        assert report.metrics["oracle.messages"] > 0
