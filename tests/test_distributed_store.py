"""The distributed, replicated backing store (Warp deployment shape)."""

import pytest

from repro.db import Weaver, WeaverClient, WeaverConfig
from repro.errors import StoreError, TransactionAborted
from repro.store.distributed import DistributedStore


@pytest.fixture
def store():
    return DistributedStore(num_nodes=4, replication=2)


class TestBasics:
    def test_same_contract_as_single_store(self, store):
        store.transact(lambda t: t.put("k", 1))
        assert store.get("k") == 1
        tx = store.begin()
        tx.delete("k")
        tx.commit()
        assert not store.exists("k")

    def test_keys_partitioned_across_nodes(self, store):
        with_keys = 0
        store.transact(
            lambda t: [t.put(f"key{i}", i) for i in range(40)]
        )
        for node in store.nodes:
            if node.cells:
                with_keys += 1
        assert with_keys >= 3  # spread, not piled on one node

    def test_every_key_replicated(self, store):
        store.transact(lambda t: t.put("k", 1))
        holders = [n for n in store.nodes if "k" in n.cells]
        assert len(holders) == 2

    def test_occ_conflicts_still_abort(self, store):
        store.transact(lambda t: t.put("k", 0))
        tx1 = store.begin()
        tx2 = store.begin()
        tx1.put("k", tx1.get("k") + 1)
        tx2.put("k", tx2.get("k") + 1)
        tx1.commit()
        with pytest.raises(TransactionAborted):
            tx2.commit()

    def test_snapshot_reads_at_version(self, store):
        store.transact(lambda t: t.put("k", "old"))
        version = store.version
        store.transact(lambda t: t.put("k", "new"))
        assert store.read_at("k", version) == (True, "old")

    def test_chain_accounting(self, store):
        store.transact(lambda t: (t.put("a", 1), t.put("b", 2)))
        assert store.chain_messages > 0
        assert store.mean_chain_length >= 1

    def test_snapshot_and_restore(self, store):
        store.transact(lambda t: (t.put("a", 1), t.put("b", 2)))
        snap = store.snapshot()
        fresh = DistributedStore(4, 2)
        fresh.restore(snap)
        assert fresh.get("a") == 1 and fresh.get("b") == 2

    def test_restore_requires_empty(self, store):
        store.transact(lambda t: t.put("a", 1))
        with pytest.raises(StoreError):
            store.restore({"b": 2})

    def test_collect_below(self, store):
        for i in range(4):
            store.transact(lambda t, i=i: t.put("k", i))
        assert store.collect_below(store.version) > 0
        assert store.get("k") == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            DistributedStore(0)
        with pytest.raises(ValueError):
            DistributedStore(2, replication=3)


class TestNodeFailure:
    def test_data_survives_node_failure(self, store):
        store.transact(
            lambda t: [t.put(f"key{i}", i) for i in range(30)]
        )
        store.fail_node(0)
        for i in range(30):
            assert store.get(f"key{i}") == i

    def test_writes_continue_after_failure(self, store):
        store.fail_node(1)
        store.transact(lambda t: t.put("k", "post-failure"))
        assert store.get("k") == "post-failure"

    def test_unreplicated_store_loses_keys_on_failure(self):
        fragile = DistributedStore(num_nodes=3, replication=1)
        fragile.transact(
            lambda t: [t.put(f"key{i}", i) for i in range(20)]
        )
        victim = next(n for n in fragile.nodes if n.cells)
        fragile.fail_node(victim.index)
        lost = 0
        for i in range(20):
            try:
                if fragile.get(f"key{i}") is None:
                    lost += 1
            except StoreError:
                lost += 1
        assert lost > 0  # replication=1 really is fragile

    def test_recover_node_rereplicates(self, store):
        store.transact(
            lambda t: [t.put(f"key{i}", i) for i in range(30)]
        )
        store.fail_node(2)
        store.transact(lambda t: t.put("during", "outage"))
        copied = store.recover_node(2)
        assert copied > 0
        # Every key the node owns is present again on it.
        for key in store._all_keys():
            owners = store.replicas_of(key)
            if store.nodes[2] in owners:
                assert key in store.nodes[2].cells

    def test_cannot_fail_last_node(self):
        tiny = DistributedStore(num_nodes=1, replication=1)
        with pytest.raises(StoreError):
            tiny.fail_node(0)

    def test_unknown_node_rejected(self, store):
        with pytest.raises(StoreError):
            store.fail_node(7)


class TestWeaverOnDistributedStore:
    @pytest.fixture
    def db(self):
        return Weaver(
            WeaverConfig(
                num_gatekeepers=2,
                num_shards=2,
                store_nodes=4,
                store_replication=2,
            )
        )

    def test_end_to_end(self, db):
        client = WeaverClient(db)
        with client.transaction() as tx:
            tx.create_vertex("a")
            tx.create_vertex("b")
            tx.create_edge("a", "b", "ab")
        assert client.reachable("a", "b")

    def test_shard_recovery_from_distributed_store(self, db):
        client = WeaverClient(db)
        client.create_vertex("a")
        client.set_property("a", "k", 1)
        db.fail_shard(db.mapping.lookup("a"))
        assert client.get_node("a")["properties"] == {"k": 1}

    def test_survives_store_node_failure_end_to_end(self, db):
        client = WeaverClient(db)
        with client.transaction() as tx:
            tx.create_vertex("a")
            tx.create_vertex("b")
            tx.create_edge("a", "b", "ab")
        db.store.fail_node(0)
        # Reads, writes, and even shard recovery keep working.
        client.set_property("a", "k", 2)
        assert client.get_node("a")["properties"]["k"] == 2
        db.fail_shard(db.mapping.lookup("a"))
        assert client.get_node("a")["properties"]["k"] == 2

    def test_config_validation(self):
        with pytest.raises(ValueError):
            WeaverConfig(store_nodes=2, store_replication=3)
        with pytest.raises(ValueError):
            WeaverConfig(store_nodes=-1)
