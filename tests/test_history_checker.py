"""The strict-serializability checker against synthetic histories.

Each test builds a small hand-crafted history whose decided order is
controlled exactly (vector clocks via gatekeeper stamps and announces,
concurrent decisions via an explicit timeline oracle), then asserts the
checker flags precisely the injected anomaly — or nothing, for the clean
and undecided cases.
"""

import pytest

from repro.core.gatekeeper import Gatekeeper, sync_announce_all
from repro.core.oracle import TimelineOracle
from repro.verify.history import History, HistoryChecker, decided_order


@pytest.fixture
def gks():
    return [Gatekeeper(i, 2) for i in range(2)]


@pytest.fixture
def oracle():
    return TimelineOracle()


def check(history, oracle):
    return HistoryChecker(history, decided_order(oracle)).check()


def kinds(violations):
    return {v.kind for v in violations}


def ordered_stamps(gks, n):
    """n stamps, each vclock-ordered after the previous (announces in
    between), alternating issuers."""
    out = []
    for i in range(n):
        out.append(gks[i % 2].issue_timestamp())
        sync_announce_all(gks)
    return out


class TestCleanHistories:
    def test_empty_history_passes(self, oracle):
        assert check(History(), oracle) == []

    def test_ordered_writes_and_current_read_pass(self, gks, oracle):
        w1, w2, r = ordered_stamps(gks, 3)
        h = History()
        h.record_commit(1, w1, [("v", 1)], 0.0, 1.0)
        h.record_commit(2, w2, [("v", 2)], 1.0, 2.0)
        h.record_apply(0, w1)
        h.record_apply(0, w2)
        h.record_read(90, r, [("v", 2)], 2.0, 3.0)
        assert check(h, oracle) == []

    def test_undecided_concurrent_pair_tolerated(self, gks, oracle):
        # Two concurrent same-vertex commits the oracle never ordered: no
        # observer distinguished the serializations, so not a violation.
        a = gks[0].issue_timestamp()
        b = gks[1].issue_timestamp()
        h = History()
        h.record_commit(1, a, [("v", 1)], 0.0, 1.0)
        h.record_commit(2, b, [("v", 2)], 0.5, 1.5)
        assert check(h, oracle) == []


class TestWriteChecks:
    def test_duplicate_stamp_detected(self, gks, oracle):
        ts = gks[0].issue_timestamp()
        h = History()
        h.record_commit(1, ts, [("v", 1)], 0.0, 1.0)
        h.record_commit(2, ts, [("w", 2)], 1.0, 2.0)
        assert kinds(check(h, oracle)) == {"duplicate-stamp"}

    def test_commit_order_inversion_detected(self, gks, oracle):
        earlier, later = ordered_stamps(gks, 2)
        h = History()
        # Store commit order contradicts the decided timestamp order.
        h.record_commit(1, later, [("v", 1)], 0.0, 1.0)
        h.record_commit(2, earlier, [("v", 2)], 1.0, 2.0)
        assert "commit-order" in kinds(check(h, oracle))

    def test_oracle_decision_drives_commit_order(self, gks, oracle):
        a = gks[0].issue_timestamp()
        b = gks[1].issue_timestamp()  # concurrent with a
        for ts in (a, b):
            oracle.create_event(ts)
        oracle.assign_order(b, a)  # the oracle committed b -> a
        h = History()
        h.record_commit(1, a, [("v", 1)], 0.0, 1.0)
        h.record_commit(2, b, [("v", 2)], 1.0, 2.0)
        assert "commit-order" in kinds(check(h, oracle))

    def test_apply_order_violation_detected(self, gks, oracle):
        earlier, later = ordered_stamps(gks, 2)
        h = History()
        h.record_commit(1, earlier, [("v", 1)], 0.0, 1.0)
        h.record_commit(2, later, [("v", 2)], 1.0, 2.0)
        h.record_apply(0, later)
        h.record_apply(0, earlier)  # the Fig 6 loop must never do this
        assert "apply-order" in kinds(check(h, oracle))


class TestReadChecks:
    def test_phantom_read_detected(self, gks, oracle):
        r = gks[0].issue_timestamp()
        h = History()
        h.record_read(90, r, [("v", 999)], 0.0, 1.0)
        assert kinds(check(h, oracle)) == {"phantom-read"}

    def test_future_read_detected(self, gks, oracle):
        r, w = ordered_stamps(gks, 2)  # write decided after the read
        h = History()
        h.record_commit(1, w, [("v", 1)], 0.0, 1.0)
        h.record_read(90, r, [("v", 1)], 1.0, 2.0)
        assert "future-read" in kinds(check(h, oracle))

    def test_stale_read_detected(self, gks, oracle):
        w1, w2, r = ordered_stamps(gks, 3)
        h = History()
        h.record_commit(1, w1, [("v", 1)], 0.0, 1.0)
        h.record_commit(2, w2, [("v", 2)], 1.0, 2.0)
        # The read's stamp is after both writes but it saw only the first.
        h.record_read(90, r, [("v", 1)], 2.0, 3.0)
        assert "stale-read" in kinds(check(h, oracle))

    def test_read_of_none_before_any_decided_write_passes(self, gks, oracle):
        r, w = ordered_stamps(gks, 2)
        h = History()
        h.record_commit(1, w, [("v", 1)], 5.0, 6.0)
        h.record_read(90, r, [("v", None)], 0.0, 1.0)
        assert check(h, oracle) == []


class TestRealTime:
    def test_real_time_write_inversion_detected(self, gks, oracle):
        first = gks[0].issue_timestamp()
        second = gks[1].issue_timestamp()  # concurrent stamps
        for ts in (first, second):
            oracle.create_event(ts)
        oracle.assign_order(second, first)
        h = History()
        # first was acked strictly before second was submitted, yet its
        # stamp is decided after second's: strictness is broken.
        h.record_commit(1, first, [("v", 1)], 0.0, 1.0)
        h.record_commit(2, second, [("v", 2)], 2.0, 3.0)
        assert "real-time-write" in kinds(check(h, oracle))

    def test_real_time_read_missing_acked_write_detected(self, gks, oracle):
        w = gks[0].issue_timestamp()
        r = gks[1].issue_timestamp()  # concurrent: timestamp checks pass
        h = History()
        h.record_commit(1, w, [("v", 1)], 0.0, 1.0)
        # Submitted after the write's ack, yet observed nothing.
        h.record_read(90, r, [("v", None)], 2.0, 3.0)
        assert "real-time-read" in kinds(check(h, oracle))

    def test_read_concurrent_with_write_may_miss_it(self, gks, oracle):
        w = gks[0].issue_timestamp()
        r = gks[1].issue_timestamp()
        h = History()
        # Read submitted before the write's ack: missing it is legal.
        h.record_commit(1, w, [("v", 1)], 0.0, 2.0)
        h.record_read(90, r, [("v", None)], 1.0, 3.0)
        assert check(h, oracle) == []


class TestDigest:
    def build(self, gks):
        w1, w2, r = ordered_stamps(gks, 3)
        h = History()
        h.record_commit(1, w1, [("v", 1)], 0.0, 1.0)
        h.record_commit(2, w2, [("v", 2)], 1.0, 2.0)
        h.record_apply(0, w1)
        h.record_apply(0, w2)
        h.record_read(90, r, [("v", 2)], 2.0, 3.0)
        return h

    def test_identical_histories_identical_digest(self):
        a = self.build([Gatekeeper(i, 2) for i in range(2)])
        b = self.build([Gatekeeper(i, 2) for i in range(2)])
        assert a.digest() == b.digest()

    def test_any_difference_changes_digest(self, gks):
        a = self.build(gks)
        b = self.build([Gatekeeper(i, 2) for i in range(2)])
        b.record_read(91, gks[0].issue_timestamp(), [("v", 2)], 3.0, 4.0)
        assert a.digest() != b.digest()
