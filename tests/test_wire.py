"""The wire codec: round-trips, framing, and schema pinning.

Every dataclass in ``cluster/messages.py`` (and every operation payload
a ``QueuedTransaction`` can carry) must survive an encode/decode round
trip bit-exactly, and the schema digest is pinned so adding a field to
any wire class without bumping ``WIRE_VERSION`` fails this suite loudly
instead of silently shifting fields in old frames.
"""

import socket
from types import SimpleNamespace

import pytest

from repro.cluster import wire
from repro.cluster.messages import (
    AnnounceMessage,
    FrontierForward,
    Heartbeat,
    ProgramRequest,
    ProgramResponse,
    ProgramStart,
    QueuedTransaction,
)
from repro.core.vclock import Ordering, VectorTimestamp
from repro.db import operations as ops

# The golden schema digest: (WIRE_VERSION, class, field...) hashed.  A
# change here means old frames no longer decode the same way — bump
# wire.WIRE_VERSION, update WIRE_SCHEMA, and re-pin this value.
GOLDEN_SCHEMA_DIGEST = (
    "02bc46d2655ff795af1312ee821ff683ac4da96fc70de3299896a324a845767a"
)

TS = VectorTimestamp(epoch=2, clocks=(3, 1, 4), issuer=1)
TS2 = VectorTimestamp(epoch=0, clocks=(7, 0, 0), issuer=0)

ALL_OPERATIONS = [
    ops.CreateVertex("v1"),
    ops.DeleteVertex("v2"),
    ops.CreateEdge("e1", "v1", "v2"),
    ops.DeleteEdge("v1", "e1"),
    ops.SetVertexProperty("v1", "color", "red"),
    ops.DeleteVertexProperty("v1", "color"),
    ops.SetEdgeProperty("v1", "e1", "weight", 3),
    ops.DeleteEdgeProperty("v1", "e1", "weight"),
]

ALL_MESSAGES = [
    QueuedTransaction(TS, tuple(ALL_OPERATIONS), seqno=7, tiebreak=42,
                      trace_id=99),
    QueuedTransaction(TS2),  # a NOP: defaults everywhere
    AnnounceMessage(1, (3, 1, 4)),
    ProgramRequest(TS, 5, (("v1", None), ("v2", SimpleNamespace(d=1))),
                   trace_id=12),
    ProgramRequest(TS, 6, ()),  # trace_id defaults to None
    ProgramResponse(5, [("v2", None)], ["v1", {"k": (1, 2)}]),
    ProgramStart(TS, 7, "bfs",
                 (((0,), "v1", SimpleNamespace(depth=0)),
                  ((1,), "v2", None)),
                 trace_id=3, cache_tail=("repr", 9), max_visits=100),
    ProgramStart(TS2, 8, "reachability", ()),  # defaults everywhere
    FrontierForward(7, 2, (((0, 1, 0), "v2", None),)),
    Heartbeat("shard0", 3, 1.25),
]

SCALARS = [
    None, True, False, 0, -1, 2**62, 2**80, -(2**90), 1.5, "", "héllo",
    b"\x00\xff", [], [1, [2, "x"]], (1, (2,)), {"a": 1, 2: "b"},
    {1, 2, 3}, frozenset({"a", "b"}), SimpleNamespace(x=1, y=(2, 3)),
    TS, TS2, Ordering.BEFORE, Ordering.AFTER, Ordering.CONCURRENT,
    Ordering.EQUAL,
]


@pytest.mark.parametrize("value", SCALARS, ids=repr)
def test_scalar_round_trip(value):
    decoded = wire.decode(wire.encode(value))
    assert decoded == value
    assert type(decoded) is type(value)


@pytest.mark.parametrize(
    "message", ALL_MESSAGES, ids=lambda m: type(m).__name__
)
def test_message_round_trip(message):
    assert wire.decode(wire.encode(message)) == message


@pytest.mark.parametrize(
    "operation", ALL_OPERATIONS, ids=lambda o: type(o).__name__
)
def test_operation_round_trip(operation):
    assert wire.decode(wire.encode(operation)) == operation


def test_every_registered_class_is_exercised():
    """The round-trip lists above must cover the full wire schema, so a
    newly registered class without a test here fails loudly."""
    covered = {type(m).__name__ for m in ALL_MESSAGES}
    covered |= {type(o).__name__ for o in ALL_OPERATIONS}
    assert covered == set(wire.WIRE_SCHEMA)


def test_nested_timestamp_identity():
    decoded = wire.decode(wire.encode(QueuedTransaction(TS)))
    assert decoded.ts == TS
    assert decoded.ts.id == TS.id
    assert hash(decoded.ts) == hash(TS)


def test_unordered_containers_encode_deterministically():
    a = wire.encode({"s": {3, 1, 2}, "z": frozenset({"b", "a"})})
    b = wire.encode({"s": {2, 3, 1}, "z": frozenset({"a", "b"})})
    assert a == b


def test_unencodable_value_fails_loudly():
    with pytest.raises(wire.WireError):
        wire.encode(object())
    with pytest.raises(wire.WireError):
        wire.encode(lambda: None)  # no closures across the wire


def test_version_mismatch_rejected():
    payload = wire.encode("hello")
    stale = bytes([wire.WIRE_VERSION + 1]) + payload[1:]
    with pytest.raises(wire.WireError, match="version mismatch"):
        wire.decode(stale)


def test_trailing_bytes_rejected():
    with pytest.raises(wire.WireError, match="trailing"):
        wire.decode(wire.encode(1) + b"x")


def test_schema_digest_pinned():
    assert wire.schema_digest() == GOLDEN_SCHEMA_DIGEST, (
        "wire schema changed: if this is intentional, bump WIRE_VERSION "
        "in src/repro/cluster/wire.py, update WIRE_SCHEMA, and re-pin "
        "GOLDEN_SCHEMA_DIGEST here"
    )


def test_schema_drift_detected(monkeypatch):
    """A field added to a wire class without updating the pin is an
    import-time error, not a silent field shift."""
    monkeypatch.setitem(
        wire.WIRE_SCHEMA, "Heartbeat", ("server", "epoch")
    )
    with pytest.raises(wire.WireError, match="drift"):
        wire.verify_schema()


def test_schema_pin_for_unknown_class_detected(monkeypatch):
    monkeypatch.setitem(wire.WIRE_SCHEMA, "Bogus", ("x",))
    with pytest.raises(wire.WireError, match="unknown class"):
        wire.verify_schema()


def test_unknown_class_on_decode_rejected():
    # Hand-craft an M frame naming an unregistered class.
    payload = bytes([wire.WIRE_VERSION]) + b"M" + bytes([5]) + b"Bogus"
    with pytest.raises(wire.WireError, match="unknown wire class"):
        wire.decode(payload)


# -- framing -------------------------------------------------------------


def test_frame_round_trip_over_socketpair():
    a, b = socket.socketpair()
    try:
        payload = wire.encode(ALL_MESSAGES[0])
        sent = wire.write_frame(a, payload)
        assert sent == len(payload) + 4
        assert wire.decode(wire.read_frame(b)) == ALL_MESSAGES[0]
    finally:
        a.close()
        b.close()


def test_read_frame_raises_on_close():
    a, b = socket.socketpair()
    a.close()
    try:
        with pytest.raises(wire.WireError, match="closed"):
            wire.read_frame(b)
    finally:
        b.close()


def test_frame_buffer_reassembles_partial_and_coalesced_frames():
    frames_in = [wire.encode(m) for m in ALL_MESSAGES[:3]]
    stream = b"".join(
        wire._U32.pack(len(f)) + f for f in frames_in
    )
    buffer = wire.FrameBuffer()
    out = []
    # Drip-feed one byte at a time: every frame must still come out whole.
    for i in range(len(stream)):
        out.extend(buffer.feed(stream[i:i + 1]))
    assert [wire.decode(f) for f in out] == ALL_MESSAGES[:3]
