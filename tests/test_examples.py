"""Every example script must run clean end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


def test_examples_exist():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=[path.stem for path in EXAMPLES]
)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "examples must narrate what they do"
