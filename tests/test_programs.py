"""The node-program framework and stock program library."""

import pytest

from repro.core.vclock import VectorClock
from repro.errors import ProgramError
from repro.graph.mvgraph import MultiVersionGraph
from repro.programs import (
    Bfs,
    BlockRender,
    ClusteringCoefficient,
    CollectReachable,
    CountEdges,
    GetEdges,
    GetNode,
    NodeProgram,
    PathDiscovery,
    ProgramExecutor,
    Reachability,
    ShortestPath,
    params,
)
from repro.programs.state import ProgramContext, WatermarkRegistry


@pytest.fixture
def world():
    """A bare graph + resolver: a -> b -> c, a -> c, c -> d."""
    clock = VectorClock(1, 0)
    graph = MultiVersionGraph()
    for v in "abcd":
        graph.create_vertex(v, clock.tick())
    graph.create_edge("ab", "a", "b", clock.tick())
    graph.create_edge("bc", "b", "c", clock.tick())
    graph.create_edge("ac", "a", "c", clock.tick())
    graph.create_edge("cd", "c", "d", clock.tick())
    ts = clock.tick()
    view = graph.at(ts)

    def resolve(handle):
        return view.vertex(handle) if view.has_vertex(handle) else None

    return graph, clock, ts, resolve


def run(program, start, start_params, resolve, ts):
    return ProgramExecutor().execute(
        program, [(start, start_params)], resolve, ts
    )


class TestExecutor:
    def test_single_vertex_program(self, world):
        _, _, ts, resolve = world
        result = run(GetNode(), "a", None, resolve, ts)
        assert result.value["handle"] == "a"
        assert result.vertices_visited == 1

    def test_prog_state_persists_across_visits(self, world):
        _, _, ts, resolve = world

        class CountVisits(NodeProgram):
            def init_state(self):
                return {"n": 0}

            def run(self, node, p, ctx):
                node.prog_state["n"] += 1
                if node.prog_state["n"] == 1:
                    return [(node.handle, p), (node.handle, p)]
                return ()

        result = run(CountVisits(), "a", None, resolve, ts)
        assert result.states["a"]["n"] == 3

    def test_missing_vertex_calls_hook(self, world):
        _, _, ts, resolve = world
        missing = []

        class Probe(NodeProgram):
            def run(self, node, p, ctx):
                return [("ghost", p)]

            def on_missing(self, handle, p, ctx):
                missing.append(handle)

        run(Probe(), "a", None, resolve, ts)
        assert missing == ["ghost"]

    def test_bad_next_hop_raises(self, world):
        _, _, ts, resolve = world

        class Bad(NodeProgram):
            def run(self, node, p, ctx):
                return ["not-a-tuple"]

        with pytest.raises(ProgramError):
            run(Bad(), "a", None, resolve, ts)

    def test_visit_budget_enforced(self, world):
        _, _, ts, resolve = world

        class Loop(NodeProgram):
            def run(self, node, p, ctx):
                return [(node.handle, p)]

        executor = ProgramExecutor(max_visits=10)
        with pytest.raises(ProgramError):
            executor.execute(Loop(), [("a", None)], resolve, ts)

    def test_halt_stops_frontier(self, world):
        _, _, ts, resolve = world

        class HaltAtB(NodeProgram):
            def run(self, node, p, ctx):
                ctx.emit(node.handle)
                if node.handle == "b":
                    ctx.halt()
                return [(e.nbr, p) for e in node.neighbors]

        result = run(HaltAtB(), "a", None, resolve, ts)
        assert result.halted
        assert "d" not in result.results

    def test_read_set_collected(self, world):
        _, _, ts, resolve = world
        result = run(Bfs(), "a", params(depth=0), resolve, ts)
        assert result.read_set == {"a", "b", "c", "d"}

    def test_value_requires_single_result(self, world):
        _, _, ts, resolve = world
        result = run(Bfs(), "a", params(depth=0), resolve, ts)
        with pytest.raises(ProgramError):
            result.value


class TestLibraryPrograms:
    def test_bfs_full(self, world):
        _, _, ts, resolve = world
        result = run(Bfs(), "a", params(depth=0), resolve, ts)
        assert result.results == ["a", "b", "c", "d"]

    def test_bfs_depth_limit(self, world):
        _, _, ts, resolve = world
        result = run(Bfs(), "a", params(depth=0, max_depth=1), resolve, ts)
        assert result.results == ["a", "b", "c"]

    def test_get_edges_shapes(self, world):
        _, _, ts, resolve = world
        result = run(GetEdges(), "a", params(), resolve, ts)
        assert {e["nbr"] for e in result.value} == {"b", "c"}

    def test_count_edges(self, world):
        _, _, ts, resolve = world
        assert run(CountEdges(), "a", params(), resolve, ts).value == 2

    def test_reachability_found(self, world):
        _, _, ts, resolve = world
        result = run(Reachability(), "a", params(target="d"), resolve, ts)
        assert result.results == [True]

    def test_reachability_not_found(self, world):
        _, _, ts, resolve = world
        result = run(Reachability(), "b", params(target="a"), resolve, ts)
        assert result.results == []

    def test_shortest_path(self, world):
        _, _, ts, resolve = world
        result = run(
            ShortestPath(), "a", params(target="d", dist=0), resolve, ts
        )
        assert result.results == [2]  # a -> c -> d

    def test_path_discovery_finds_existing_path(self, world):
        _, _, ts, resolve = world
        result = run(
            PathDiscovery(), "a", params(target="d", path=()), resolve, ts
        )
        path = result.results[0]
        assert path[0] == "a" and path[-1] == "d"
        # Every consecutive pair must be a real edge at the snapshot.
        edges = {("a", "b"), ("b", "c"), ("a", "c"), ("c", "d")}
        assert all(pair in edges for pair in zip(path, path[1:]))

    def test_collect_reachable(self, world):
        _, _, ts, resolve = world
        result = run(CollectReachable(), "b", None, resolve, ts)
        assert set(result.results) == {"b", "c", "d"}

    def test_clustering_coefficient_aggregate(self, world):
        _, _, ts, resolve = world
        result = run(
            ClusteringCoefficient(), "a", params(phase="center"), resolve, ts
        )
        # a's neighbours are {b, c}; one edge (b->c) among them; k=2.
        assert ClusteringCoefficient.aggregate(result) == pytest.approx(0.5)

    def test_block_render(self, world):
        graph, clock, _, _ = world
        graph.create_vertex("blk", clock.tick())
        graph.create_edge("t1", "blk", "a", clock.tick())
        graph.create_edge("t2", "blk", "b", clock.tick())
        ts = clock.tick()
        view = graph.at(ts)

        def resolve(handle):
            return view.vertex(handle) if view.has_vertex(handle) else None

        result = run(BlockRender(), "blk", params(phase="block"), resolve, ts)
        assert result.results[0]["n_tx"] == 2
        assert len(result.results) == 3


class TestProgramContext:
    def test_emit_and_results(self):
        ctx = ProgramContext(1, None)
        ctx.emit("x")
        assert ctx.results == ["x"]

    def test_state_for_creates_once(self):
        ctx = ProgramContext(1, None)
        first = ctx.state_for("v", dict)
        second = ctx.state_for("v", dict)
        assert first is second


class TestWatermarkRegistry:
    def make_ts(self, clock_values):
        from repro.core.vclock import VectorTimestamp

        return VectorTimestamp(0, tuple(clock_values), 0)

    def test_watermark_is_oldest_active(self):
        registry = WatermarkRegistry()
        registry.start(1, self.make_ts([5, 5]))
        registry.start(2, self.make_ts([2, 2]))
        assert registry.watermark() == self.make_ts([2, 2])

    def test_watermark_fallback_when_idle(self):
        registry = WatermarkRegistry()
        fallback = self.make_ts([9, 9])
        assert registry.watermark(fallback) == fallback

    def test_finish_removes(self):
        registry = WatermarkRegistry()
        registry.start(1, self.make_ts([1, 1]))
        registry.finish(1)
        assert registry.watermark() is None
        assert registry.completed == 1

    def test_len(self):
        registry = WatermarkRegistry()
        registry.start(1, self.make_ts([1, 1]))
        assert len(registry) == 1
