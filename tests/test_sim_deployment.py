"""The event-driven simulated deployment: the protocol on real timers."""

import pytest

from repro.db import operations as ops
from repro.db.config import WeaverConfig
from repro.programs import Bfs, GetNode, Reachability, params
from repro.sim.clock import MSEC, USEC
from repro.sim.deployment import SimulatedWeaver


def make(tau=200 * USEC, nop_period=100 * USEC, gks=2, shards=2):
    return SimulatedWeaver(
        WeaverConfig(num_gatekeepers=gks, num_shards=shards),
        tau=tau,
        nop_period=nop_period,
    )


def commit(sw, operations, new_vertices=()):
    outcome = {}
    sw.submit_transaction(
        operations,
        callback=lambda ok, value: outcome.update(ok=ok, value=value),
        new_vertices=new_vertices,
    )
    sw.run(2 * MSEC)
    return outcome


def ask(sw, program, start, prog_params=None):
    box = {}
    sw.submit_program(
        program, start, prog_params, callback=lambda r: box.update(r=r)
    )
    sw.run(5 * MSEC)
    return box.get("r")


class TestTransactions:
    def test_commit_through_network(self):
        sw = make()
        outcome = commit(
            sw,
            [ops.CreateVertex("a")],
            new_vertices=("a",),
        )
        assert outcome["ok"]
        assert sw.committed == 1
        assert sw.store.exists("v:a")

    def test_invalid_transaction_aborts(self):
        sw = make()
        commit(sw, [ops.CreateVertex("a")], ("a",))
        outcome = commit(sw, [ops.CreateVertex("a")], ())
        assert not outcome["ok"]
        assert sw.aborted == 1

    def test_writes_reach_shards_in_memory(self):
        sw = make()
        commit(sw, [ops.CreateVertex("a")], ("a",))
        sw.run(2 * MSEC)
        shard = sw.shards[sw.mapping.lookup("a")]
        assert "a" in shard.graph


class TestPrograms:
    def test_program_sees_committed_write(self):
        sw = make()
        commit(
            sw,
            [
                ops.CreateVertex("a"),
                ops.CreateVertex("b"),
                ops.CreateEdge("e", "a", "b"),
            ],
            ("a", "b"),
        )
        result = ask(sw, Reachability(), "a", params(target="b"))
        assert result.results == [True]

    def test_program_latency_bounded_by_timers(self):
        # The section 4.2 bound: a program waits at most ~tau (for the
        # issuing gatekeeper's announce) + a NOP period + network hops.
        tau, nop = 200 * USEC, 100 * USEC
        sw = make(tau=tau, nop_period=nop)
        commit(sw, [ops.CreateVertex("a")], ("a",))
        ask(sw, GetNode(), "a")
        assert len(sw.program_latencies) == 1
        bound = tau + 2 * nop + 6 * 100 * USEC  # generous hop budget
        assert sw.program_latencies[0] <= bound

    def test_multi_hop_traversal(self):
        sw = make()
        commit(
            sw,
            [
                ops.CreateVertex("a"),
                ops.CreateVertex("b"),
                ops.CreateVertex("c"),
                ops.CreateEdge("ab", "a", "b"),
                ops.CreateEdge("bc", "b", "c"),
            ],
            ("a", "b", "c"),
        )
        result = ask(sw, Bfs(), "a", params(depth=0))
        assert result.results == ["a", "b", "c"]

    def test_program_waits_for_concurrent_write(self):
        # Submit a write and a program back-to-back: the program's
        # snapshot must include the write (it committed first).
        sw = make()
        commit(sw, [ops.CreateVertex("a")], ("a",))
        box = {}
        sw.submit_transaction(
            [ops.SetVertexProperty("a", "k", 42)],
            callback=lambda ok, v: None,
        )
        sw.submit_program(
            GetNode(), "a", None, callback=lambda r: box.update(r=r)
        )
        sw.run(5 * MSEC)
        assert box["r"].value["properties"] == {"k": 42}


class TestTimers:
    def test_announces_flow(self):
        sw = make()
        sw.run(2 * MSEC)
        assert sw.announce_messages() > 0

    def test_nops_flow(self):
        sw = make()
        sw.run(2 * MSEC)
        assert sw.nop_messages() > 0

    def test_heartbeats_keep_servers_alive(self):
        sw = make()
        sw.run(0.5)
        assert sw.manager.detect_failures(sw.simulator.now) == []

    def test_smaller_tau_means_fewer_oracle_messages(self):
        # The Fig 14 tradeoff emerging from real timers: with announces
        # much faster than NOPs, heartbeat stamps order proactively; with
        # slow announces they stay concurrent and hit the oracle.
        def oracle_traffic(tau):
            sw = make(tau=tau, nop_period=200 * USEC)
            commit(sw, [ops.CreateVertex("a")], ("a",))
            ask(sw, GetNode(), "a")
            sw.run(5 * MSEC)
            return sw.oracle_messages()

        fast = oracle_traffic(50 * USEC)
        slow = oracle_traffic(2 * MSEC)
        assert fast < slow

    def test_fifo_channels_hold_under_load(self):
        sw = make()
        for i in range(10):
            sw.submit_transaction(
                [ops.CreateVertex(f"v{i}")],
                new_vertices=(f"v{i}",),
            )
        sw.run(10 * MSEC)
        assert sw.committed == 10
        assert all(
            shard.stats.out_of_order_rejected == 0 for shard in sw.shards
        )
