"""Geo-distributed regions: topology, deadlines, and the fast path.

The tentpole of the geo work is exercised end to end elsewhere (the soak
in ``test_geo_soak.py``, the benchmark sweep in ``benchmarks/``); this
file pins the individual mechanisms:

* :class:`RegionTopology` validation and the per-(src, dst)-region
  latency charging in the simulated network;
* :class:`DeadlineStamper` monotonicity (Lamport + floor);
* deadline stamps and fast-path counters on a live geo deployment,
  including the ``region.<r>.*`` metric surface;
* the coordination-accounting bugfix — head-only oracle stats push the
  τ controller in the provably wrong direction once region clients
  serve reads locally;
* the idle-window bugfix — quiescent windows no longer pad the τ
  trajectory;
* the recovery-barrier reconcile — a committed write whose forwarding
  message is partitioned away past an epoch barrier still reaches the
  surviving shard (from the store), and the late message is dropped
  rather than applied out of decided order.
"""

import pytest

from repro.core.gatekeeper import DeadlineStamper
from repro.db.config import WeaverConfig
from repro.db.operations import CreateVertex, SetVertexProperty
from repro.programs.library import GetNode
from repro.sim.clock import MSEC, USEC
from repro.sim.deployment import SimulatedWeaver, TauController
from repro.sim.faults import FaultPlan
from repro.sim.network import Network, RegionTopology
from repro.sim.simulator import Simulator
from repro.workloads.geo import default_geo_topology, run_geo


class TestRegionTopology:
    def test_matrix_must_be_square(self):
        with pytest.raises(ValueError, match="square"):
            RegionTopology([[0.0, 1.0], [1.0]])

    def test_matrix_must_be_non_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            RegionTopology([[0.0, -1.0], [1.0, 0.0]])

    def test_needs_at_least_one_region(self):
        with pytest.raises(ValueError, match="at least one"):
            RegionTopology([])

    def test_jitter_shape_must_match(self):
        with pytest.raises(ValueError, match="jitter"):
            RegionTopology([[0.0, 1.0], [1.0, 0.0]], jitter=[[0.0]])

    def test_jitter_must_be_non_negative(self):
        with pytest.raises(ValueError, match="jitter"):
            RegionTopology(
                [[0.0, 1.0], [1.0, 0.0]],
                jitter=[[0.0, -0.5], [0.0, 0.0]],
            )

    def test_assign_out_of_range(self):
        topo = RegionTopology([[0.0]])
        with pytest.raises(ValueError, match="out of range"):
            topo.assign("gk0", 1)

    def test_unassigned_servers_live_in_region_zero(self):
        topo = RegionTopology([[1.0, 2.0], [3.0, 4.0]])
        assert topo.region_of("anything") == 0
        topo.assign("shard1", 1)
        assert topo.region_of("shard1") == 1

    def test_assignments_is_a_copy(self):
        topo = RegionTopology([[1.0, 2.0], [3.0, 4.0]])
        topo.assign("gk0", 1)
        grabbed = topo.assignments
        grabbed["gk0"] = 0
        assert topo.region_of("gk0") == 1

    def test_asymmetric_edges_and_reach(self):
        topo = RegionTopology(
            [[1.0, 10.0], [20.0, 2.0]],
            jitter=[[0.0, 3.0], [1.0, 0.0]],
        )
        assert topo.num_regions == 2
        assert topo.edge(0, 1) == (10.0, 3.0)
        assert topo.edge(1, 0) == (20.0, 1.0)
        assert topo.one_way(0, 1) != topo.one_way(1, 0)
        assert topo.reach(0) == 13.0  # 10 + 3 beats 1 + 0
        assert topo.reach(1) == 21.0
        assert topo.max_reach() == 21.0

    def test_default_topology_is_asymmetric_both_ways(self):
        for n in (2, 3):
            topo = default_geo_topology(n)
            for a in range(n):
                for b in range(n):
                    if a != b:
                        assert topo.one_way(a, b) != topo.one_way(b, a)
        with pytest.raises(ValueError):
            default_geo_topology(4)


class TestNetworkRegionCharging:
    def make(self):
        sim = Simulator()
        topo = RegionTopology([[10.0, 100.0], [200.0, 10.0]])
        topo.assign("gk0", 0)
        topo.assign("shard1", 1)
        net = Network(sim, latency=1.0, topology=topo)
        return sim, net

    def test_cross_region_edges_charge_the_matrix(self):
        sim, net = self.make()
        seen = []
        net.send("gk0", "shard1", lambda: seen.append(sim.now))
        net.send("shard1", "gk0", lambda: seen.append(sim.now))
        net.send("gk0", "gk0", lambda: seen.append(sim.now))
        sim.run()
        assert seen == [10.0, 100.0, 200.0]

    def test_region_counters_key_on_source_region(self):
        sim, net = self.make()
        net.send("gk0", "shard1", lambda: None, kind="announce")
        net.send("gk0", "shard1", lambda: None, kind="announce")
        net.send("shard1", "gk0", lambda: None, kind="announce")
        assert net.stats.region_count(0, "announce") == 2
        assert net.stats.region_count(1, "announce") == 1
        assert net.stats.region_count(1, "nop") == 0
        net.stats.reset()
        assert net.stats.region_count(0, "announce") == 0


class TestDeadlineStamper:
    def test_deadlines_strictly_increase(self):
        clock = [5.0]
        stamper = DeadlineStamper(lambda: clock[0], horizon=2.0)
        first = stamper.next_deadline()
        assert first == 7.0
        # The wall clock stalls; deadlines must not.
        second = stamper.next_deadline()
        third = stamper.next_deadline()
        assert first < second < third
        assert stamper.issued == 3

    def test_floor_from_previous_vertex_update_is_cleared(self):
        stamper = DeadlineStamper(lambda: 0.0, horizon=1.0)
        deadline = stamper.next_deadline(floor=50.0)
        assert deadline > 50.0

    def test_observe_folds_remote_deadline(self):
        stamper = DeadlineStamper(lambda: 0.0, horizon=1.0)
        stamper.observe(30.0)
        assert stamper.last == 30.0
        stamper.observe(10.0)  # stale announce; keep the max
        assert stamper.last == 30.0
        assert stamper.next_deadline() > 30.0

    def test_negative_horizon_rejected(self):
        with pytest.raises(ValueError):
            DeadlineStamper(lambda: 0.0, horizon=-1.0)


class TestGeoDeployment:
    """A live two-region deployment: stamps, counters, metric names."""

    def make(self):
        config = WeaverConfig(
            num_gatekeepers=2, num_shards=2, num_regions=2
        )
        return SimulatedWeaver(
            config=config,
            tau=200 * USEC,
            nop_period=200 * USEC,
            heartbeat_period=4 * MSEC,
            gc_period=1.0,
            topology=default_geo_topology(2, scale=0.25),
        )

    def test_commits_carry_future_deadlines(self):
        sw = self.make()
        stamps = []
        submitted = sw.simulator.now
        sw.submit_transaction(
            [CreateVertex("a"), SetVertexProperty("a", "w", 1)],
            callback=lambda ok, ts: stamps.append((ok, ts)),
            new_vertices=("a",),
        )
        sw.run(20 * MSEC)
        (ok, ts), = stamps
        assert ok
        assert ts.deadline is not None
        assert ts.deadline > submitted
        # Tiga rule: the ack waited for the deadline to pass.
        assert sw.simulator.now >= ts.deadline

    def test_region_metric_surface(self):
        sw = self.make()
        sw.submit_transaction(
            [CreateVertex("a")], new_vertices=("a",)
        )
        sw.run(10 * MSEC)
        snap = sw.metrics.snapshot()
        for region in range(2):
            assert f"region.{region}.oracle_messages" in snap
            assert f"region.{region}.announce_messages" in snap
        assert snap["region.0.announce_messages"] > 0

    def test_fastpath_orders_without_oracle(self):
        rep = run_geo(seed=11, num_regions=2, tau=200 * USEC,
                      duration=10 * MSEC)
        assert rep.consistent, (rep.violations, rep.online_violations)
        assert rep.committed > 0
        assert rep.reads_completed > 0
        assert rep.deadline_fastpath > 0
        assert rep.oracle_calls == 0

    def test_oracle_only_baseline_pays_for_the_same_traffic(self):
        fast = run_geo(seed=11, num_regions=2, tau=200 * USEC,
                       duration=10 * MSEC)
        base = run_geo(seed=11, num_regions=2, tau=200 * USEC,
                       duration=10 * MSEC, fastpath=False)
        assert base.consistent, (base.violations, base.online_violations)
        assert base.committed == fast.committed
        assert base.oracle_calls > fast.oracle_calls
        assert base.deadline_fastpath == 0


class TestCoordinationAccounting:
    """Satellite bugfix: per-region banks broke head-only oracle stats."""

    def test_head_only_stats_pick_the_wrong_tau_direction(self):
        # One measurement window: 20 announces, 10 commits, and 32
        # ordering requests of which the region clients answered 30 from
        # their local replicas — only 2 ever reached the chain head.
        head_fed = TauController(400 * USEC)
        aggregated = TauController(400 * USEC)
        # Old accounting: the head saw 2 requests, so announces look
        # 10x the oracle load and τ backs off (grows) — exactly wrong
        # while the regions are hammering their local replicas.
        assert head_fed.observe(2, 20, 10) > 400 * USEC
        # Fixed accounting: 32 > 20, reactive ordering rivals the
        # proactive machinery, τ tightens (shrinks).
        assert aggregated.observe(2 + 30, 20, 10) < 400 * USEC

    def test_deployment_aggregates_region_queries(self):
        # With the fast path off, geo reads resolve established orders
        # at their region replicas; the chain head never sees those.
        rep = run_geo(seed=11, num_regions=2, tau=200 * USEC,
                      duration=10 * MSEC, fastpath=False)
        assert rep.oracle_calls > rep.oracle_calls_head
        local = sum(
            value for key, value in rep.region_metrics.items()
            if key.endswith(".local_queries")
        )
        assert rep.oracle_calls == rep.oracle_calls_head + local


class TestIdleWindows:
    """Satellite bugfix: idle windows no longer pad the τ trajectory."""

    def test_idle_windows_record_no_adjustment_sample(self):
        controller = TauController(100 * USEC)
        assert controller.observe(0, 0, 0) == 100 * USEC
        assert controller.adjustments == []
        controller.observe(5, 1, 3)
        assert len(controller.adjustments) == 1
        # Announce chatter with zero commits is still an idle window.
        controller.observe(0, 40, 0)
        assert len(controller.adjustments) == 1

    def test_trajectory_summary_ignores_idle_windows(self):
        # The Fig 14 harness summarises trajectory = [tau for tau, _ in
        # controller.adjustments]; an idle-padded trajectory would pin
        # the summary to whatever τ the system idled at.
        controller = TauController(100 * USEC, balance_ratio=2.0)
        for _ in range(50):
            controller.observe(0, 0, 0)  # long quiescent stretch
        controller.observe(9, 1, 4)  # oracle-heavy: τ halves
        trajectory = [tau for tau, _ in controller.adjustments]
        assert trajectory == [50 * USEC]


class TestRecoveryReconcile:
    """Recovery-barrier soundness under in-flight committed forwards.

    A region partition can hold a gatekeeper->shard forward in flight
    past an epoch barrier.  The barrier flush assumes no old-epoch
    stamp arrives afterwards, so the surviving shard must (a) recover
    the committed effects from the backing store and (b) drop the late
    message instead of applying it out of decided order.
    """

    def make(self, plan):
        config = WeaverConfig(num_gatekeepers=1, num_shards=2)
        return SimulatedWeaver(
            config=config,
            tau=200 * USEC,
            nop_period=200 * USEC,
            heartbeat_period=2 * MSEC,
            gc_period=1.0,
            fault_plan=plan,
        )

    def test_partitioned_commit_survives_the_barrier(self):
        target = "a"  # placement is round-robin: first vertex -> shard0
        plan = FaultPlan(seed=1).partition(
            "gk0", "shard0", start=4 * MSEC, end=30 * MSEC
        )
        sw = self.make(plan)
        box = {}
        sw.submit_transaction(
            [CreateVertex(target), SetVertexProperty(target, "w", 1)],
            callback=lambda ok, ts: box.update(setup=ok),
            new_vertices=(target,),
        )
        sw.run(4 * MSEC)
        assert box["setup"]
        assert sw.mapping.lookup(target) == 0
        # Commit during the partition: gk0 commits to the store, but the
        # forward to shard0 is held by the partition.
        sw.submit_transaction(
            [SetVertexProperty(target, "w", 99)],
            callback=lambda ok, ts: box.update(write=ok),
        )
        sw.run(2 * MSEC)
        assert box["write"]
        # The *other* shard dies; detection + recovery advance the epoch
        # while the forward is still partitioned away.
        sw.crash_shard(1)
        sw.run(18 * MSEC)  # recover (epoch barrier), then heal at 30ms
        assert sw.recoveries == 1
        assert sw.manager.reconciled_records >= 1
        sw.run(10 * MSEC)
        # The late forward was dropped at the surviving shard...
        assert sw.stragglers_dropped >= 1
        # ...and the committed value is there anyway, via the store.
        results = []
        sw.submit_program(GetNode(), target, callback=results.append)
        sw.run(10 * MSEC)
        (result,) = results
        assert result is not None
        assert result.results[0]["properties"]["w"] == 99
