"""Demand paging (section 6.1) and read-only replicas (section 6.4)."""

import pytest

from repro.db import Weaver, WeaverClient, WeaverConfig
from repro.errors import ClusterError, NoSuchVertex


@pytest.fixture
def paged():
    db = Weaver(WeaverConfig(num_gatekeepers=2, num_shards=2))
    client = WeaverClient(db)
    db.enable_demand_paging()
    with client.transaction() as tx:
        tx.create_vertex("a")
        tx.set_property("a", "k", 1)
        tx.create_vertex("b")
        tx.create_edge("a", "b", "ab")
        tx.set_edge_property("a", "ab", "w", 2)
    return db, client


class TestDemandPaging:
    def test_evict_then_read_pages_back_in(self, paged):
        db, client = paged
        released = db.evict_vertex("a")
        assert released > 0
        node = client.get_node("a")
        assert node["properties"] == {"k": 1}
        assert node["out_degree"] == 1
        stats = db.paging_stats()
        assert stats == {"pages_in": 1, "pages_out": 1}

    def test_paged_in_edges_keep_properties(self, paged):
        db, client = paged
        db.evict_vertex("a")
        edges = client.get_edges("a")
        assert edges[0]["properties"] == {"w": 2}
        assert edges[0]["nbr"] == "b"

    def test_traversal_through_evicted_vertex(self, paged):
        db, client = paged
        db.evict_vertex("a")
        assert client.reachable("a", "b")

    def test_write_to_evicted_vertex_pages_in(self, paged):
        db, client = paged
        db.evict_vertex("a")
        client.set_property("a", "k", 2)
        assert client.get_node("a")["properties"]["k"] == 2

    def test_evicting_missing_vertex_raises(self, paged):
        db, _ = paged
        with pytest.raises(NoSuchVertex):
            db.evict_vertex("ghost")

    def test_evict_without_paging_enabled_raises(self, db, client):
        client.create_vertex("a")
        with pytest.raises(ClusterError):
            db.shards[db.mapping.lookup("a")].evict("a")

    def test_page_in_missing_vertex_returns_not_resident(self, paged):
        db, _ = paged
        shard = db.shards[0]
        assert not shard.ensure_paged("never_existed")

    def test_eviction_survives_under_churn(self, paged):
        db, client = paged
        for i in range(5):
            client.set_property("a", "round", i)
            db.evict_vertex("a")
            assert client.get_node("a")["properties"]["round"] == i

    def test_eviction_sacrifices_version_history(self, paged):
        """Documented tradeoff: a page-in restores only the latest
        committed state (stamped 'ancient'), so a checkpoint taken
        between the eviction and the page-in sees post-checkpoint
        writes for that vertex.  Applications needing stable history
        must not evict the vertices it covers (section 4.5's
        keep-history GC policy)."""
        db, client = paged
        db.evict_vertex("a")
        point = db.checkpoint()          # while "a" is paged out
        client.set_property("a", "k", 99)  # pages "a" back in, post-write
        node = client.get_node("a", at=point)
        assert node["properties"]["k"] == 99  # history was sacrificed

    def test_history_stable_when_resident(self, paged):
        """Contrast: without eviction the same sequence keeps history."""
        db, client = paged
        point = db.checkpoint()
        client.set_property("a", "k", 99)
        assert client.get_node("a", at=point)["properties"]["k"] == 1

    def test_paging_survives_shard_failover(self, paged):
        db, client = paged
        db.fail_shard(db.mapping.lookup("a"))
        db.evict_vertex("a")  # pager must be re-installed post-recovery
        assert client.get_node("a")["properties"] == {"k": 1}


class TestReadReplicas:
    @pytest.fixture
    def setup(self):
        db = Weaver(WeaverConfig(num_gatekeepers=2, num_shards=2))
        client = WeaverClient(db)
        with client.transaction() as tx:
            tx.create_vertex("a")
            tx.set_property("a", "v", 1)
        shard = db.mapping.lookup("a")
        replica = db.add_read_replica(shard)
        return db, client, replica

    def test_replica_serves_committed_state(self, setup):
        _, _, replica = setup
        assert replica.get_node("a")["properties"] == {"v": 1}

    def test_replica_reads_are_stale_until_refresh(self, setup):
        db, client, replica = setup
        client.set_property("a", "v", 2)
        # The primary sees the write; the replica still serves v=1.
        assert client.get_node("a")["properties"]["v"] == 2
        assert replica.get_node("a")["properties"]["v"] == 1
        db.refresh_replicas()
        assert replica.get_node("a")["properties"]["v"] == 2

    def test_replica_counts_reads_and_refreshes(self, setup):
        db, _, replica = setup
        replica.get_node("a")
        replica.count_edges("a")
        db.refresh_replicas()
        assert replica.reads_served == 2
        assert replica.refreshes == 2  # initial + explicit

    def test_replica_edge_reads(self, setup):
        db, client, replica = setup
        client.create_vertex("b")
        client.create_edge("a", "b", "ab")
        db.refresh_replicas()
        # The edge lives at a's shard; the replica mirrors it.
        assert replica.count_edges("a") == 1
        assert replica.get_edges("a")[0]["nbr"] == "b"

    def test_unknown_shard_rejected(self, setup):
        db, _, _ = setup
        with pytest.raises(ClusterError):
            db.add_read_replica(9)

    def test_replica_never_blocks_on_ordering(self, setup):
        """Replica reads touch neither gatekeepers nor the oracle."""
        db, _, replica = setup
        stamped_before = sum(
            gk.stats.timestamps_issued for gk in db.gatekeepers
        )
        oracle_before = db.oracle_head().stats.messages
        for _ in range(5):
            replica.get_node("a")
        assert (
            sum(gk.stats.timestamps_issued for gk in db.gatekeepers)
            == stamped_before
        )
        assert db.oracle_head().stats.messages == oracle_before
