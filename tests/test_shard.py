"""Shard servers: queues, FIFO channels, the Fig 6 event loop."""

import pytest

from repro.cluster.messages import QueuedTransaction
from repro.cluster.shard import ShardServer
from repro.core.gatekeeper import Gatekeeper, sync_announce_all
from repro.core.oracle import TimelineOracle
from repro.db.operations import CreateVertex
from repro.errors import ClusterError


@pytest.fixture
def oracle():
    return TimelineOracle()


@pytest.fixture
def shard(oracle):
    return ShardServer(0, 2, oracle)


@pytest.fixture
def gks():
    return [Gatekeeper(i, 2) for i in range(2)]


def tx_for(gk, *handles):
    ts = gk.issue_timestamp()
    return QueuedTransaction(ts, tuple(CreateVertex(h) for h in handles))


def nop_for(gk):
    return QueuedTransaction(gk.make_nop())


class TestQueues:
    def test_enqueue_and_depths(self, shard, gks):
        shard.enqueue(0, tx_for(gks[0], "a"))
        assert shard.queue_depths() == [1, 0]

    def test_unknown_gatekeeper_rejected(self, shard, gks):
        with pytest.raises(ClusterError):
            shard.enqueue(5, tx_for(gks[0], "a"))

    def test_fifo_seqno_enforced(self, shard, gks):
        ts1 = gks[0].issue_timestamp()
        ts2 = gks[0].issue_timestamp()
        shard.enqueue(0, QueuedTransaction(ts1, (), seqno=0))
        with pytest.raises(ClusterError):
            shard.enqueue(0, QueuedTransaction(ts2, (), seqno=2))
        assert shard.stats.out_of_order_rejected == 1

    def test_fifo_seqno_accepts_contiguous(self, shard, gks):
        for i in range(3):
            shard.enqueue(
                0, QueuedTransaction(gks[0].issue_timestamp(), (), seqno=i)
            )
        assert shard.queue_depths()[0] == 3

    def test_seqnos_per_gatekeeper_independent(self, shard, gks):
        shard.enqueue(0, QueuedTransaction(gks[0].issue_timestamp(), (), seqno=0))
        shard.enqueue(1, QueuedTransaction(gks[1].issue_timestamp(), (), seqno=0))
        assert shard.queue_depths() == [1, 1]


class TestEventLoop:
    def test_no_apply_while_any_queue_empty(self, shard, gks):
        shard.enqueue(0, tx_for(gks[0], "a"))
        assert shard.apply_available() == 0
        assert "a" not in shard.graph

    def test_applies_when_all_queues_nonempty(self, shard, gks):
        shard.enqueue(0, tx_for(gks[0], "a"))
        shard.enqueue(1, nop_for(gks[1]))
        # The transaction arrived first, so it applies; the loop then
        # stops because queue 0 has drained (Fig 6's non-empty rule).
        applied = shard.apply_available()
        assert applied == 1
        assert "a" in shard.graph
        assert shard.stats.transactions_applied == 1
        assert shard.stats.nops_applied == 0

    def test_applies_in_timestamp_order_across_queues(self, shard, gks):
        early = tx_for(gks[0], "early")
        sync_announce_all(gks)
        late = tx_for(gks[1], "late")
        order = []
        shard.enqueue(1, late)
        shard.enqueue(0, early)
        shard.enqueue(0, nop_for(gks[0]))  # keeps queue 0 non-empty
        shard.apply_available(on_apply=lambda q: order.append(q.ts))
        assert order[0] == early.ts

    def test_concurrent_heads_use_arrival_order(self, shard, gks):
        # Crossed stamps, no announce: first-arrived applies first.
        a = tx_for(gks[0], "first_arrival")
        b = tx_for(gks[1], "second_arrival")
        applied = []
        shard.enqueue(1, b)
        shard.enqueue(0, a)
        shard.apply_available(
            on_apply=lambda q: applied.append(
                q.operations[0].handle if q.operations else "nop"
            )
        )
        assert applied[0] == "second_arrival"

    def test_same_gatekeeper_queue_orders_by_counter(self, shard, gks):
        t1 = tx_for(gks[0], "x1")
        t2 = tx_for(gks[0], "x2")
        applied = []
        shard.enqueue(0, t2)
        shard.enqueue(0, t1)
        shard.enqueue(1, nop_for(gks[1]))
        shard.apply_available(
            on_apply=lambda q: applied.append(
                q.operations[0].handle if q.operations else "nop"
            )
        )
        assert applied.index("x1") < applied.index("x2")


class TestProgramReadiness:
    def test_not_ready_with_empty_queue(self, shard, gks):
        prog_ts = gks[0].issue_timestamp()
        assert not shard.ready_for(prog_ts)

    def test_ready_after_dominating_nops(self, shard, gks):
        prog_ts = gks[0].issue_timestamp()
        sync_announce_all(gks)
        shard.enqueue(0, nop_for(gks[0]))
        shard.enqueue(1, nop_for(gks[1]))
        assert shard.ready_for(prog_ts)

    def test_advance_to_applies_preceding_transactions(self, shard, gks):
        write = tx_for(gks[0], "w")
        sync_announce_all(gks)
        prog_ts = gks[1].issue_timestamp()
        sync_announce_all(gks)
        shard.enqueue(0, write)
        shard.enqueue(0, nop_for(gks[0]))
        shard.enqueue(1, nop_for(gks[1]))
        assert shard.advance_to(prog_ts)
        assert "w" in shard.graph

    def test_advance_stops_before_later_transactions(self, shard, gks):
        prog_ts = gks[0].issue_timestamp()
        sync_announce_all(gks)
        later = tx_for(gks[0], "later")
        shard.enqueue(0, later)
        shard.enqueue(1, nop_for(gks[1]))
        shard.advance_to(prog_ts)
        assert "later" not in shard.graph

    def test_snapshot_counts_program(self, shard, gks):
        ts = gks[0].issue_timestamp()
        shard.snapshot(ts)
        assert shard.stats.programs_started == 1

    def test_concurrent_write_ordered_before_program(self, shard, gks):
        # The section 4.1 rule: an unordered (write, program) pair
        # resolves write-first, so the program sees the write.
        write = tx_for(gks[0], "w")
        prog_ts = gks[1].issue_timestamp()  # concurrent with the write
        shard.enqueue(0, write)
        shard.enqueue(0, nop_for(gks[0]))
        shard.enqueue(1, nop_for(gks[1]))
        shard.apply_available(stop_before=prog_ts)
        assert "w" in shard.graph
        view = shard.snapshot(prog_ts)
        assert view.has_vertex("w")


class TestEpochs:
    def test_advance_epoch_clears_queues(self, shard, gks):
        shard.enqueue(0, tx_for(gks[0], "a"))
        shard.advance_epoch(1)
        assert shard.queue_depths() == [0, 0]
        assert shard.epoch == 1

    def test_advance_epoch_resets_seqnos(self, shard, gks):
        shard.enqueue(0, QueuedTransaction(gks[0].issue_timestamp(), (), seqno=0))
        shard.advance_epoch(1)
        shard.enqueue(0, QueuedTransaction(gks[0].issue_timestamp(), (), seqno=0))
        assert shard.queue_depths()[0] == 1

    def test_epoch_must_advance(self, shard):
        with pytest.raises(ClusterError):
            shard.advance_epoch(0)


class TestGC:
    def test_collect_below_delegates_to_graph(self, shard, gks):
        create = tx_for(gks[0], "a")
        shard.enqueue(0, create)
        shard.enqueue(1, nop_for(gks[1]))
        shard.apply_available()
        ts = gks[0].issue_timestamp()
        assert shard.collect_below(ts) == 0  # nothing dead yet
