"""The transport contract, against all three implementations.

LocalTransport is the synchronous reference; SimTransport must preserve
the simulated network's per-kind accounting and latency charging; the
ProcessTransport tests run against a real socketpair serviced by an
in-thread echo worker speaking wire frames — FIFO of buffered sends
relative to requests, in-flight batching, request pipelining, error
envelopes, and the per-channel queue-depth gauges.
"""

import socket
import threading

import pytest

from repro.cluster import wire
from repro.cluster.transport import (
    LocalTransport,
    ProcessTransport,
    SimTransport,
    TransportError,
)
from repro.obs import MetricsRegistry
from repro.sim.network import Network
from repro.sim.simulator import Simulator


# -- LocalTransport -------------------------------------------------------


def test_local_send_and_request():
    transport = LocalTransport()
    log = []
    transport.register("node", lambda src, kind, p: log.append(
        (src, kind, p)) or f"re:{p}")
    transport.send("a", "node", "ping", 1)
    replies = []
    value = transport.request("a", "node", "ask", 2, on_reply=replies.append)
    assert log == [("a", "ping", 1), ("a", "ask", 2)]
    assert value == "re:2"
    assert replies == ["re:2"]
    assert transport.stats.messages_sent == 2
    assert transport.stats.requests == 1


def test_local_unregistered_destination_raises():
    with pytest.raises(TransportError):
        LocalTransport().send("a", "ghost", "ping", None)


def test_broadcast_fans_out():
    transport = LocalTransport()
    got = []
    transport.register("x", lambda s, k, p: got.append(("x", p)))
    transport.register("y", lambda s, k, p: got.append(("y", p)))
    transport.broadcast("a", ["x", "y"], "hb", 7)
    assert got == [("x", 7), ("y", 7)]


# -- SimTransport ---------------------------------------------------------


def test_sim_send_pays_latency_and_counts_kind():
    simulator = Simulator()
    network = Network(simulator, latency=0.5)
    transport = SimTransport(network)
    got = []
    transport.register("shard0", lambda s, k, p: got.append((s, k, p)))
    transport.send("gk0", "shard0", "nop", 11)
    assert got == []  # in flight, not delivered synchronously
    simulator.run(until=1.0)
    assert got == [("gk0", "nop", 11)]
    assert network.stats.count("nop") == 1


def test_sim_request_replies_after_round_trip():
    simulator = Simulator()
    network = Network(simulator, latency=0.5)
    transport = SimTransport(network)
    transport.register("shard0", lambda s, k, p: p * 2)
    replies = []
    assert transport.request(
        "client", "shard0", "ask", 21, on_reply=replies.append
    ) is None
    simulator.run(until=0.75)
    assert replies == []  # delivered, but the reply is still in flight
    simulator.run(until=1.25)
    assert replies == [42]
    assert network.stats.count("ask") == 1
    assert network.stats.count("ask-reply") == 1


def test_sim_dead_letter_is_dropped():
    simulator = Simulator()
    transport = SimTransport(Network(simulator, latency=0.1))
    transport.send("a", "nobody", "x", 1)
    simulator.run(until=1.0)  # no handler: delivery is a no-op


# -- ProcessTransport -----------------------------------------------------


def echo_worker(sock, received):
    """Minimal wire-speaking worker: records one-way messages in order,
    replies to requests (pipelined-safe), errors on kind 'boom', and
    piggybacks events on kind 'traced'."""
    while True:
        try:
            envelope = wire.decode(wire.read_frame(sock))
        except (wire.WireError, OSError):
            return
        if envelope["k"] == "b":
            for kind, payload in envelope["m"]:
                received.append((kind, payload))
            continue
        rid = envelope["id"]
        kind = envelope["kind"]
        received.append(("request:" + kind, envelope.get("p")))
        if kind == "boom":
            reply = {"k": "e", "id": rid, "e": "kaboom"}
        elif kind == "traced":
            reply = {"k": "p", "id": rid, "p": None,
                     "ev": [(1, "shard.apply", "shard0", {"x": 1})]}
        elif kind == "stop":
            reply = {"k": "p", "id": rid, "p": True}
        else:
            reply = {"k": "p", "id": rid, "p": envelope.get("p")}
        try:
            wire.write_frame(sock, wire.encode(reply))
        except OSError:
            return
        if kind == "stop":
            return


@pytest.fixture
def process_transport():
    registry = MetricsRegistry()
    transport = ProcessTransport(registry=registry, timeout=30.0)
    workers = {}

    def add(name):
        parent, child = socket.socketpair(
            socket.AF_UNIX, socket.SOCK_STREAM
        )
        received = []
        thread = threading.Thread(
            target=echo_worker, args=(child, received), daemon=True
        )
        thread.start()
        transport.add_channel(name, parent)
        workers[name] = (received, thread, child)
        return received

    yield transport, registry, add
    transport.close()
    for received, thread, child in workers.values():
        child.close()
        thread.join(timeout=5)


def test_process_sends_flush_before_request_fifo(process_transport):
    transport, _registry, add = process_transport
    received = add("w0")
    transport.send("gk0", "w0", "enqueue", 1)
    transport.send("gk1", "w0", "enqueue", 2)
    assert received == []  # buffered, nothing on the wire yet
    reply = transport.request("client", "w0", "ask", "now")
    assert reply == "now"
    # The buffered sends went out first, in order, before the request.
    assert received == [
        ("enqueue", 1), ("enqueue", 2), ("request:ask", "now")
    ]
    assert transport.stats.batches_sent == 1
    assert transport.stats.batched_messages == 2


def test_process_request_pipelining_counts_overlap(process_transport):
    transport, _registry, add = process_transport
    add("w0")
    add("w1")
    replies = transport.request_all(
        "client", [("w0", "ask", 1), ("w1", "ask", 2)]
    )
    assert replies == [1, 2]
    # The second request was written while the first was still in
    # flight: that overlap is exactly what the counter measures.
    assert transport.stats.requests == 2
    assert transport.stats.requests_pipelined == 1
    # A lone request afterwards overlaps nothing.
    transport.request("client", "w0", "ask", 3)
    assert transport.stats.requests_pipelined == 1


def test_process_queue_depth_gauges(process_transport):
    transport, registry, add = process_transport
    add("w0")
    transport.send("gk0", "w0", "enqueue", 1)
    transport.send("gk0", "w0", "enqueue", 2)
    assert registry.snapshot()["transport.queue_depth.w0"] == 2
    transport.flush("w0")
    assert registry.snapshot()["transport.queue_depth.w0"] == 0


def test_process_error_envelope_raises(process_transport):
    transport, _registry, add = process_transport
    add("w0")
    with pytest.raises(TransportError, match="kaboom"):
        transport.request("client", "w0", "boom", None)
    # The channel survives a worker-reported error.
    assert transport.request("client", "w0", "ask", 5) == 5


def test_process_piggybacked_events_reach_client_handler(process_transport):
    transport, _registry, add = process_transport
    add("w0")
    events = []
    transport.register(
        "client", lambda src, kind, payload: events.append(
            (src, kind, payload))
    )
    transport.request("client", "w0", "traced", None)
    assert events == [
        ("w0", "trace-events", [(1, "shard.apply", "shard0", {"x": 1})])
    ]


def test_process_max_batch_forces_flush():
    transport = ProcessTransport(max_batch=3, timeout=30.0)
    parent, child = socket.socketpair(socket.AF_UNIX, socket.SOCK_STREAM)
    received = []
    thread = threading.Thread(
        target=echo_worker, args=(child, received), daemon=True
    )
    thread.start()
    try:
        transport.add_channel("w0", parent)
        for i in range(3):
            transport.send("gk0", "w0", "enqueue", i)
        transport.request("client", "w0", "stop", None)
        assert received[:3] == [("enqueue", i) for i in range(3)]
        assert transport.stats.batches_sent == 1
    finally:
        transport.close()
        child.close()
        thread.join(timeout=5)


def test_process_dead_channel_raises(process_transport):
    transport, _registry, _add = process_transport
    with pytest.raises(TransportError):
        transport.send("a", "ghost", "x", None)


def test_process_remove_channel_discards_buffered(process_transport):
    transport, registry, add = process_transport
    received = add("w0")
    transport.send("gk0", "w0", "enqueue", 1)
    transport.remove_channel("w0")
    assert registry.snapshot()["transport.queue_depth.w0"] == 0
    assert received == []
    with pytest.raises(TransportError):
        transport.request("client", "w0", "ask", 1)
