"""Cross-feature integration stories.

Each test exercises several subsystems together the way a real
deployment would: churn + historical queries + GC, paging + failover,
caching + invalidation + GC, cross-system functional equivalence, and
the full lifecycle of a long-lived database.
"""

import random

import pytest

from repro.baselines.titan import TitanGraph
from repro.db import Weaver, WeaverClient, WeaverConfig
from repro.errors import TransactionAborted
from repro.programs import ComponentSize, GetNode
from repro.workloads import graphs


class TestLongLivedDatabase:
    def test_lifecycle_with_churn_history_gc_and_failover(self):
        """Build, mutate, checkpoint, fail over, collect — all in one
        life: every phase must preserve the previous phases' guarantees."""
        db = Weaver(
            WeaverConfig(num_gatekeepers=3, num_shards=3, announce_every=2)
        )
        client = WeaverClient(db)
        rng = random.Random(99)
        # Phase 1: build.
        edges = graphs.social_graph(60, 4, seed=5)
        handles = graphs.load_into_weaver(client, edges)
        phase1 = db.checkpoint()
        baseline = client.count_edges("n0")
        # Phase 2: churn — delete a third of the edges.
        victims = rng.sample(sorted(handles), len(handles) // 3)
        for key in victims:
            src = key.split("->", 1)[0]
            client.delete_edge(src, handles[key])
        # Historical read sees the phase-1 world.
        assert client.count_edges("n0", at=phase1) == baseline
        # Phase 3: failover of every server class.
        db.fail_shard(1)
        db.fail_gatekeeper(0)
        # Live reads still work, and writes continue.
        client.create_vertex("newcomer")
        client.create_edge("n0", "newcomer")
        assert client.reachable("n0", "newcomer")
        # Phase 4: GC (the epoch bump made the old history collectable).
        stats = db.collect_garbage()
        assert stats["graph"] >= 0
        # Live data untouched by GC.
        assert client.reachable("n0", "newcomer")

    def test_program_results_stable_across_failover(self):
        db = Weaver(WeaverConfig(num_gatekeepers=2, num_shards=2))
        client = WeaverClient(db)
        edges = graphs.twitter_graph(80, 3, seed=6)
        graphs.load_into_weaver(client, edges)
        start = edges[-1][0]
        before = set(client.traverse(start))
        db.fail_shard(0)
        db.fail_shard(1)
        after = set(client.traverse(start))
        assert before == after


class TestPagingUnderPressure:
    def test_evict_everything_and_query(self):
        """Evict the entire graph; traversals demand-page it back."""
        db = Weaver(WeaverConfig(num_gatekeepers=2, num_shards=2))
        client = WeaverClient(db)
        db.enable_demand_paging()
        edges = graphs.twitter_graph(40, 3, seed=7)
        graphs.load_into_weaver(client, edges)
        names = graphs.vertices_of(edges)
        start = edges[-1][0]
        expected = set(client.traverse(start))
        for name in names:
            db.evict_vertex(name)
        assert set(client.traverse(start)) == expected
        assert db.paging_stats()["pages_in"] >= len(expected)

    def test_paging_with_writes_between_evictions(self):
        db = Weaver(WeaverConfig(num_gatekeepers=2, num_shards=2))
        client = WeaverClient(db)
        db.enable_demand_paging()
        client.create_vertex("v")
        for i in range(8):
            client.set_property("v", "i", i)
            if i % 2 == 0:
                db.evict_vertex("v")
            assert client.get_node("v")["properties"]["i"] == i


class TestCrossSystemEquivalence:
    def test_weaver_and_titan_agree_on_final_graph(self):
        """The same committed operation stream produces the same graph
        in Weaver and in the Titan baseline (serializable both ways)."""
        db = Weaver(WeaverConfig(num_gatekeepers=2, num_shards=2))
        client = WeaverClient(db)
        titan = TitanGraph(num_shards=2)
        rng = random.Random(13)
        names = [f"v{i}" for i in range(8)]
        with client.transaction() as tx:
            for name in names:
                tx.create_vertex(name)
        for name in names:
            titan.execute([("create_vertex", name)], 0.0)
        edges = {}
        for i in range(60):
            src = names[rng.randrange(len(names))]
            dst = names[rng.randrange(len(names))]
            if rng.random() < 0.7 or not edges:
                handle = f"e{i}"
                try:
                    client.transact(
                        lambda tx: tx.create_edge(src, dst, handle)
                    )
                    titan.execute(
                        [("create_edge", handle, src, dst)], 0.0
                    )
                    edges[handle] = src
                except TransactionAborted:
                    pass
            else:
                handle, owner = rng.choice(sorted(edges.items()))
                client.transact(lambda tx: tx.delete_edge(owner, handle))
                titan.execute([("delete_edge", owner, handle)], 0.0)
                del edges[handle]
        for name in names:
            weaver_edges = {
                e["handle"]: e["nbr"] for e in client.get_edges(name)
            }
            titan_node = titan._vertex(name)
            titan_edges = {
                h: dst for h, (dst, _) in titan_node.edges.items()
            }
            assert weaver_edges == titan_edges

    def test_reachability_agreement_with_graphlab(self):
        from repro.baselines.graphlab import GraphLab

        db = Weaver(WeaverConfig(num_gatekeepers=2, num_shards=2))
        client = WeaverClient(db)
        edges = graphs.twitter_graph(60, 3, seed=21)
        graphs.load_into_weaver(client, edges)
        engine = GraphLab(mode="sync")
        engine.load(edges)
        names = graphs.vertices_of(edges)
        rng = random.Random(21)
        for _ in range(15):
            src = names[rng.randrange(len(names))]
            dst = names[rng.randrange(len(names))]
            assert client.reachable(src, dst) == (
                engine.reachability(src, dst)[0]
            )


class TestCachingWithGc:
    def test_cache_and_gc_coexist(self):
        db = Weaver(
            WeaverConfig(
                num_gatekeepers=2, num_shards=2, enable_program_cache=True
            )
        )
        client = WeaverClient(db)
        with client.transaction() as tx:
            tx.create_vertex("a")
            tx.create_vertex("b")
            tx.create_edge("a", "b", "ab")
        first = db.run_program(
            ComponentSize(), "a", use_cache=True, cache_key="cs"
        )
        db.collect_garbage()
        cached = db.run_program(
            ComponentSize(), "a", use_cache=True, cache_key="cs"
        )
        assert cached.results == first.results
        client.delete_edge("a", "ab")
        fresh = db.run_program(
            ComponentSize(), "a", use_cache=True, cache_key="cs"
        )
        assert ComponentSize.size(fresh) == 1


class TestReplicaPipelines:
    def test_replicas_on_every_shard_serve_a_read_storm(self):
        db = Weaver(WeaverConfig(num_gatekeepers=2, num_shards=2))
        client = WeaverClient(db)
        edges = graphs.social_graph(30, 3, seed=31)
        graphs.load_into_weaver(client, edges)
        replicas = [
            db.add_read_replica(i) for i in range(len(db.shards))
        ]
        names = graphs.vertices_of(edges)
        by_shard = {}
        for name in names:
            by_shard.setdefault(db.mapping.lookup(name), []).append(name)
        served = 0
        for index, replica in enumerate(replicas):
            for name in by_shard.get(index, []):
                node = replica.get_node(name)
                assert node["handle"] == name
                served += 1
        assert served == len(names)
