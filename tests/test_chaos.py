"""Chaos smoke tests (tier-1): seeded fault runs stay consistent.

Three fixed seeds, a short horizon.  Each run crashes one gatekeeper and
one shard, partitions a gatekeeper-shard pair, and sprinkles message
drops/duplicates/delays — and must still produce a history with zero
strict-serializability violations.  The same seed must reproduce the
bit-for-bit identical history (the determinism guarantee every chaos
debugging session depends on).
"""

import pytest

from repro.sim.clock import MSEC
from repro.workloads.chaos import run_chaos

SEEDS = (1, 2, 3)
HORIZON = 30 * MSEC

_cache = {}


def chaos(seed):
    if seed not in _cache:
        _cache[seed] = run_chaos(seed, duration=HORIZON)
    return _cache[seed]


@pytest.mark.parametrize("seed", SEEDS)
class TestSeededRuns:
    def test_zero_violations(self, seed):
        report = chaos(seed)
        assert report.violations == []
        assert report.consistent

    def test_both_crash_kinds_recovered(self, seed):
        # The default plan kills one gatekeeper and one shard.
        assert chaos(seed).recoveries >= 2

    def test_made_progress_under_faults(self, seed):
        report = chaos(seed)
        assert report.committed > 0
        assert report.reads_completed > 0

    def test_faults_actually_fired(self, seed):
        faults = chaos(seed).faults
        for kind in ("drop", "duplicate", "delay", "partition"):
            assert faults.get(kind, 0) > 0, kind


class TestDeterminism:
    def test_same_seed_identical_history(self):
        first = chaos(SEEDS[0])
        second = run_chaos(SEEDS[0], duration=HORIZON)
        assert first.digest == second.digest
        assert first.history.canonical() == second.history.canonical()
        assert first.committed == second.committed
        assert first.faults == second.faults

    def test_different_seeds_different_histories(self):
        digests = {chaos(seed).digest for seed in SEEDS}
        assert len(digests) == len(SEEDS)
