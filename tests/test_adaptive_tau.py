"""Dynamic τ adjustment (section 3.5's workload-adaptive announce period)."""

import pytest

from repro.db import operations as ops
from repro.db.config import WeaverConfig
from repro.sim.clock import MSEC, USEC
from repro.sim.deployment import SimulatedWeaver, TauController


class TestTauController:
    def test_initial_tau_respected(self):
        controller = TauController(1 * MSEC)
        assert controller.tau == 1 * MSEC

    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            TauController(1.0, bounds=(10 * USEC, 10 * MSEC))
        with pytest.raises(ValueError):
            TauController(1 * MSEC, factor=1.0)

    def test_oracle_pressure_shrinks_tau(self):
        controller = TauController(1 * MSEC)
        new_tau = controller.observe(
            oracle_messages=50, announce_messages=10, committed=100
        )
        assert new_tau == pytest.approx(0.5 * MSEC)

    def test_announce_chatter_grows_tau(self):
        controller = TauController(1 * MSEC, balance_ratio=8.0)
        new_tau = controller.observe(
            oracle_messages=2, announce_messages=500, committed=100
        )
        assert new_tau == pytest.approx(2 * MSEC)

    def test_balanced_window_leaves_tau_alone(self):
        controller = TauController(1 * MSEC, balance_ratio=8.0)
        new_tau = controller.observe(
            oracle_messages=20, announce_messages=100, committed=100
        )
        assert new_tau == pytest.approx(1 * MSEC)

    def test_tau_never_escapes_bounds(self):
        controller = TauController(
            20 * USEC, bounds=(10 * USEC, 100 * USEC)
        )
        for _ in range(10):
            controller.observe(1000, 10, 10)
        assert controller.tau == pytest.approx(10 * USEC)
        for _ in range(10):
            controller.observe(0, 10_000, 10)
        assert controller.tau == pytest.approx(100 * USEC)

    def test_idle_window_no_adjustment(self):
        controller = TauController(1 * MSEC)
        assert controller.observe(0, 0, 0) == pytest.approx(1 * MSEC)

    def test_adjustment_history_recorded(self):
        controller = TauController(1 * MSEC)
        controller.observe(50, 0, 100)
        controller.observe(50, 0, 100)
        assert len(controller.adjustments) == 2


class TestAdaptiveDeployment:
    def drive(self, sw, seconds, txs_per_window=20):
        """Submit a steady write load while time advances."""
        window = sw.adapt_window
        steps = int(seconds / window)
        n = 0
        for _ in range(steps):
            for _ in range(txs_per_window):
                handle = f"v{n}"
                n += 1
                sw.submit_transaction(
                    [ops.CreateVertex(handle)], new_vertices=(handle,)
                )
            sw.run(window)

    def test_oracle_heavy_start_converges_down(self):
        controller = TauController(
            8 * MSEC, bounds=(50 * USEC, 8 * MSEC)
        )
        sw = SimulatedWeaver(
            WeaverConfig(num_gatekeepers=3, num_shards=2),
            nop_period=500 * USEC,
            tau_controller=controller,
            adapt_window=4 * MSEC,
        )
        self.drive(sw, seconds=0.08)
        assert sw.tau < 8 * MSEC
        assert controller.tau == sw.tau

    def test_quiescent_system_backs_off(self):
        controller = TauController(
            100 * USEC, bounds=(100 * USEC, 50 * MSEC),
            balance_ratio=4.0,
        )
        sw = SimulatedWeaver(
            WeaverConfig(num_gatekeepers=3, num_shards=2),
            nop_period=2 * MSEC,
            tau_controller=controller,
            adapt_window=4 * MSEC,
        )
        # A trickle of transactions: announces vastly outnumber work.
        self.drive(sw, seconds=0.08, txs_per_window=1)
        assert sw.tau > 100 * USEC
