"""The assembled database: commits, programs, placement, GC, stats."""

import pytest

from repro.core.vclock import Ordering
from repro.db import Weaver, WeaverConfig
from repro.errors import ClusterError
from repro.programs import Bfs, GetNode, params


class TestConfig:
    def test_defaults_valid(self):
        WeaverConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_gatekeepers": 0},
            {"num_shards": 0},
            {"announce_every": 0},
            {"oracle_chain_length": 0},
            {"partitioner": "bogus"},
            {"drain_every": 0},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            WeaverConfig(**kwargs)


class TestCommitPath:
    def test_commit_reaches_store_and_shards(self, db):
        with db.begin_transaction() as tx:
            tx.create_vertex("a")
        assert db.store.exists("v:a")
        db.drain()
        shard = db.shards[db.mapping.lookup("a")]
        assert "a" in shard.graph

    def test_round_robin_gatekeeper_selection(self, db):
        tx1 = db.begin_transaction()
        tx2 = db.begin_transaction()
        assert tx1.gatekeeper_index != tx2.gatekeeper_index
        tx1.abort()
        tx2.abort()

    def test_unknown_gatekeeper_rejected(self, db):
        with pytest.raises(ClusterError):
            db.begin_transaction(gatekeeper=9)

    def test_ops_routed_to_owning_shard_only(self, db):
        with db.begin_transaction() as tx:
            tx.create_vertex("a")
            tx.create_vertex("b")
        shard_a = db.mapping.lookup("a")
        shard_b = db.mapping.lookup("b")
        assert shard_a != shard_b  # round-robin placement
        db.drain()
        assert "a" in db.shards[shard_a].graph
        assert "a" not in db.shards[shard_b].graph

    def test_commit_timestamps_totally_ordered_with_announces(self, db):
        stamps = []
        for i in range(4):
            with db.begin_transaction() as tx:
                tx.create_vertex(f"v{i}")
            stamps.append(tx.timestamp)
        for a, b in zip(stamps, stamps[1:]):
            assert a.compare(b) is Ordering.BEFORE

    def test_drain_bounds_queue_depth(self):
        db = Weaver(WeaverConfig(num_gatekeepers=2, num_shards=2,
                                 drain_every=10))
        for i in range(25):
            with db.begin_transaction() as tx:
                tx.create_vertex(f"v{i}")
        max_depth = max(
            max(shard.queue_depths()) for shard in db.shards
        )
        assert max_depth < 25


class TestPlacement:
    def test_hash_partitioner_used_when_configured(self):
        db = Weaver(WeaverConfig(num_shards=4, partitioner="hash"))
        with db.begin_transaction() as tx:
            tx.create_vertex("a")
        from repro.graph.partition import HashPartitioner

        assert db.mapping.lookup("a") == HashPartitioner(4).assign("a")

    def test_ldg_partitioner_accepted(self):
        db = Weaver(WeaverConfig(num_shards=2, partitioner="ldg"))
        with db.begin_transaction() as tx:
            tx.create_vertex("a")
        assert db.mapping.lookup("a") is not None


class TestPrograms:
    def test_program_sees_committed_writes(self, db):
        with db.begin_transaction() as tx:
            tx.create_vertex("a")
            tx.set_property("a", "k", 1)
        result = db.run_program(GetNode(), "a")
        assert result.value["properties"] == {"k": 1}

    def test_program_start_list_form(self, db):
        with db.begin_transaction() as tx:
            tx.create_vertex("a")
            tx.create_vertex("b")
        result = db.run_program(
            GetNode(), [("a", None), ("b", None)]
        )
        assert len(result.results) == 2

    def test_missing_start_vertex_yields_empty(self, db):
        result = db.run_program(Bfs(), "ghost", params(depth=0))
        assert result.results == []

    def test_programs_run_counter(self, db):
        with db.begin_transaction() as tx:
            tx.create_vertex("a")
        db.run_program(GetNode(), "a")
        db.run_program(GetNode(), "a")
        assert db.programs_run == 2

    def test_watermark_registry_empty_after_programs(self, db):
        with db.begin_transaction() as tx:
            tx.create_vertex("a")
        db.run_program(GetNode(), "a")
        assert len(db.watermarks) == 0


class TestCheckpoint:
    def test_checkpoint_sees_prior_writes_only(self, db, client):
        with db.begin_transaction() as tx:
            tx.create_vertex("a")
            tx.set_property("a", "v", "old")
        point = db.checkpoint()
        client.set_property("a", "v", "new")
        assert client.get_node("a", at=point)["properties"]["v"] == "old"
        assert client.get_node("a")["properties"]["v"] == "new"

    def test_checkpoint_stable_under_vertex_creation(self, db, client):
        with db.begin_transaction() as tx:
            tx.create_vertex("a")
        point = db.checkpoint()
        client.create_vertex("b")
        result = db.run_program(GetNode(), "b", at=point)
        assert result.results == []  # b did not exist at the checkpoint


class TestGarbageCollection:
    def test_gc_reclaims_deleted_state(self, db, client):
        client.create_vertex("a")
        client.create_vertex("b")
        handle = client.create_edge("a", "b")
        client.delete_edge("a", handle)
        client.delete_vertex("b")
        stats = db.collect_garbage()
        assert stats["graph"] > 0

    def test_gc_preserves_live_data(self, db, client):
        client.create_vertex("a")
        client.set_property("a", "k", 1)
        db.collect_garbage()
        assert client.get_node("a")["properties"] == {"k": 1}

    def test_gc_respects_in_flight_program(self, db, client):
        client.create_vertex("a")
        client.delete_vertex("a")
        # Simulate an in-flight program pinned before the deletion by
        # registering an old watermark.
        old = db.checkpoint()
        db.watermarks.start(999, old)
        db.collect_garbage()
        db.watermarks.finish(999)
        # Vertex record must still answer historical queries at `old`...
        # it was deleted before old, so it is collectable; but a program
        # at `old` must still see a consistent (deleted) state.
        result = db.run_program(GetNode(), "a", at=old)
        assert result.results == []

    def test_gc_cleans_oracle_events(self, db, client):
        # Generate concurrent stamps so the oracle holds events.
        db2 = Weaver(WeaverConfig(num_gatekeepers=2, num_shards=2,
                                  announce_every=10))
        from repro.db import WeaverClient

        c2 = WeaverClient(db2)
        c2.create_vertex("a")
        for i in range(6):
            c2.set_property("a", "k", i)
        db2.drain()
        assert db2.oracle_head().num_events > 0
        db2.collect_garbage()
        # Every event predates the idle-time watermark: all collected.
        assert db2.oracle_head().num_events == 0


class TestStats:
    def test_ordering_stats_aggregate(self, db, client):
        client.create_vertex("a")
        client.get_node("a")
        stats = db.ordering_stats()
        assert stats["proactive"] > 0

    def test_oracle_head_unreplicated(self, db):
        assert db.oracle_head() is db.oracle

    def test_oracle_head_replicated(self):
        db = Weaver(WeaverConfig(oracle_chain_length=3))
        assert db.oracle_head() is db.oracle.head
