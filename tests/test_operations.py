"""Graph write operations: both execution targets, validity checks."""

import pytest

from repro.core.vclock import VectorClock
from repro.db import operations as ops
from repro.errors import TransactionAborted
from repro.graph.mvgraph import MultiVersionGraph
from repro.store.kvstore import TransactionalStore


@pytest.fixture
def store():
    return TransactionalStore()


@pytest.fixture
def clock():
    return VectorClock(1, 0)


def apply_store(store, *operations):
    tx = store.begin()
    for op in operations:
        op.apply_store(tx, None)
    tx.commit()


class TestStoreApply:
    def test_create_vertex(self, store):
        apply_store(store, ops.CreateVertex("a"))
        assert store.get("v:a") == {}

    def test_create_duplicate_vertex_aborts(self, store):
        apply_store(store, ops.CreateVertex("a"))
        with pytest.raises(TransactionAborted):
            apply_store(store, ops.CreateVertex("a"))

    def test_delete_vertex(self, store):
        apply_store(store, ops.CreateVertex("a"))
        apply_store(store, ops.DeleteVertex("a"))
        assert not store.exists("v:a")

    def test_delete_deleted_vertex_aborts(self, store):
        # The paper's canonical validity example (section 4.2).
        apply_store(store, ops.CreateVertex("a"))
        apply_store(store, ops.DeleteVertex("a"))
        with pytest.raises(TransactionAborted):
            apply_store(store, ops.DeleteVertex("a"))

    def test_create_edge_requires_both_endpoints(self, store):
        apply_store(store, ops.CreateVertex("a"))
        with pytest.raises(TransactionAborted):
            apply_store(store, ops.CreateEdge("e", "a", "missing"))
        with pytest.raises(TransactionAborted):
            apply_store(store, ops.CreateEdge("e", "missing", "a"))

    def test_create_edge(self, store):
        apply_store(store, ops.CreateVertex("a"), ops.CreateVertex("b"))
        apply_store(store, ops.CreateEdge("e", "a", "b"))
        assert store.get("e:a:e") == {"dst": "b", "props": {}}

    def test_duplicate_edge_aborts(self, store):
        apply_store(store, ops.CreateVertex("a"), ops.CreateVertex("b"))
        apply_store(store, ops.CreateEdge("e", "a", "b"))
        with pytest.raises(TransactionAborted):
            apply_store(store, ops.CreateEdge("e", "a", "b"))

    def test_delete_edge(self, store):
        apply_store(store, ops.CreateVertex("a"), ops.CreateVertex("b"))
        apply_store(store, ops.CreateEdge("e", "a", "b"))
        apply_store(store, ops.DeleteEdge("a", "e"))
        assert not store.exists("e:a:e")

    def test_delete_missing_edge_aborts(self, store):
        apply_store(store, ops.CreateVertex("a"))
        with pytest.raises(TransactionAborted):
            apply_store(store, ops.DeleteEdge("a", "ghost"))

    def test_set_vertex_property(self, store):
        apply_store(store, ops.CreateVertex("a"))
        apply_store(store, ops.SetVertexProperty("a", "k", 1))
        assert store.get("v:a") == {"k": 1}

    def test_set_property_on_missing_vertex_aborts(self, store):
        with pytest.raises(TransactionAborted):
            apply_store(store, ops.SetVertexProperty("ghost", "k", 1))

    def test_delete_vertex_property(self, store):
        apply_store(store, ops.CreateVertex("a"))
        apply_store(store, ops.SetVertexProperty("a", "k", 1))
        apply_store(store, ops.DeleteVertexProperty("a", "k"))
        assert store.get("v:a") == {}

    def test_set_edge_property(self, store):
        apply_store(store, ops.CreateVertex("a"), ops.CreateVertex("b"))
        apply_store(store, ops.CreateEdge("e", "a", "b"))
        apply_store(store, ops.SetEdgeProperty("a", "e", "w", 2))
        assert store.get("e:a:e")["props"] == {"w": 2}

    def test_set_edge_property_missing_edge_aborts(self, store):
        apply_store(store, ops.CreateVertex("a"))
        with pytest.raises(TransactionAborted):
            apply_store(store, ops.SetEdgeProperty("a", "ghost", "w", 2))

    def test_delete_edge_property(self, store):
        apply_store(store, ops.CreateVertex("a"), ops.CreateVertex("b"))
        apply_store(store, ops.CreateEdge("e", "a", "b"))
        apply_store(store, ops.SetEdgeProperty("a", "e", "w", 2))
        apply_store(store, ops.DeleteEdgeProperty("a", "e", "w"))
        assert store.get("e:a:e")["props"] == {}


class TestGraphApply:
    def test_round_trip_all_ops(self, clock):
        graph = MultiVersionGraph()
        sequence = [
            ops.CreateVertex("a"),
            ops.CreateVertex("b"),
            ops.CreateEdge("e", "a", "b"),
            ops.SetVertexProperty("a", "color", "red"),
            ops.SetEdgeProperty("a", "e", "w", 1),
            ops.DeleteEdgeProperty("a", "e", "w"),
            ops.DeleteVertexProperty("a", "color"),
            ops.DeleteEdge("a", "e"),
            ops.DeleteVertex("b"),
        ]
        for op in sequence:
            op.apply_graph(graph, clock.tick())
        view = graph.at(clock.tick())
        assert view.has_vertex("a")
        assert not view.has_vertex("b")
        assert view.vertex("a").out_degree() == 0
        assert view.vertex("a").properties() == {}


class TestTouched:
    def test_touched_is_owner_vertex(self):
        assert ops.CreateEdge("e", "a", "b").touched() == frozenset(["a"])
        assert ops.DeleteEdge("a", "e").touched() == frozenset(["a"])
        assert ops.SetVertexProperty("v", "k", 1).touched() == frozenset(["v"])

    def test_touched_union(self):
        touched = ops.touched_vertices(
            [ops.CreateVertex("a"), ops.CreateEdge("e", "a", "b")]
        )
        assert touched == frozenset(["a"])


class TestRecoveryDecode:
    def test_graph_state_from_store(self, store):
        apply_store(store, ops.CreateVertex("a"), ops.CreateVertex("b"))
        apply_store(store, ops.CreateEdge("e", "a", "b"))
        apply_store(store, ops.SetVertexProperty("a", "k", 1))
        vertices, edges = ops.graph_state_from_store(store.snapshot())
        assert vertices == {"a": {"k": 1}, "b": {}}
        assert edges == {("a", "e"): {"dst": "b", "props": {}}}
