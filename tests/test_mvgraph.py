"""The multi-version graph: mutations, snapshots, history, GC."""

import pytest

from repro.core.vclock import VectorClock
from repro.errors import NoSuchEdge, NoSuchVertex
from repro.graph.mvgraph import MultiVersionGraph


@pytest.fixture
def clock():
    return VectorClock(1, 0)


@pytest.fixture
def graph():
    return MultiVersionGraph()


def build_pair(graph, clock):
    """a --e--> b, returning the post-build snapshot timestamp."""
    graph.create_vertex("a", clock.tick())
    graph.create_vertex("b", clock.tick())
    graph.create_edge("e", "a", "b", clock.tick())
    return clock.tick()


class TestMutations:
    def test_create_and_snapshot_vertex(self, graph, clock):
        graph.create_vertex("a", clock.tick())
        view = graph.at(clock.tick())
        assert view.has_vertex("a")

    def test_duplicate_vertex_rejected(self, graph, clock):
        graph.create_vertex("a", clock.tick())
        with pytest.raises(ValueError):
            graph.create_vertex("a", clock.tick())

    def test_recreate_after_delete_allowed(self, graph, clock):
        graph.create_vertex("a", clock.tick())
        graph.delete_vertex("a", clock.tick())
        graph.create_vertex("a", clock.tick())
        assert graph.at(clock.tick()).has_vertex("a")

    def test_delete_missing_vertex_raises(self, graph, clock):
        with pytest.raises(NoSuchVertex):
            graph.delete_vertex("ghost", clock.tick())

    def test_edge_to_any_destination_allowed_locally(self, graph, clock):
        # Destination may live on another shard; local graph does not
        # validate it (the backing store did, at commit).
        graph.create_vertex("a", clock.tick())
        graph.create_edge("e", "a", "remote", clock.tick())
        view = graph.at(clock.tick())
        assert [e.nbr for e in view.vertex("a").neighbors] == ["remote"]

    def test_edge_from_missing_vertex_raises(self, graph, clock):
        with pytest.raises(NoSuchVertex):
            graph.create_edge("e", "ghost", "b", clock.tick())

    def test_delete_edge(self, graph, clock):
        ts = build_pair(graph, clock)
        graph.delete_edge("a", "e", clock.tick())
        after = clock.tick()
        assert graph.at(ts).vertex("a").out_degree() == 1
        assert graph.at(after).vertex("a").out_degree() == 0

    def test_delete_missing_edge_raises(self, graph, clock):
        build_pair(graph, clock)
        with pytest.raises(NoSuchEdge):
            graph.delete_edge("a", "ghost", clock.tick())

    def test_delete_vertex_tombstones_its_edges(self, graph, clock):
        build_pair(graph, clock)
        graph.delete_vertex("a", clock.tick())
        after = clock.tick()
        assert not graph.at(after).has_vertex("a")

    def test_vertex_properties(self, graph, clock):
        graph.create_vertex("a", clock.tick())
        graph.set_vertex_property("a", "color", "red", clock.tick())
        view = graph.at(clock.tick())
        assert view.vertex("a").get_property("color") == "red"

    def test_delete_vertex_property(self, graph, clock):
        graph.create_vertex("a", clock.tick())
        graph.set_vertex_property("a", "color", "red", clock.tick())
        assert graph.delete_vertex_property("a", "color", clock.tick())
        assert graph.at(clock.tick()).vertex("a").get_property("color") is None

    def test_edge_properties(self, graph, clock):
        build_pair(graph, clock)
        graph.set_edge_property("a", "e", "weight", 3.0, clock.tick())
        view = graph.at(clock.tick())
        edge = view.vertex("a").get_edge("e")
        assert edge.get_property("weight") == 3.0
        assert edge.check("weight", 3.0)

    def test_delete_edge_property(self, graph, clock):
        build_pair(graph, clock)
        graph.set_edge_property("a", "e", "w", 1, clock.tick())
        assert graph.delete_edge_property("a", "e", "w", clock.tick())
        edge = graph.at(clock.tick()).vertex("a").get_edge("e")
        assert not edge.check("w")

    def test_multiple_property_values_per_edge(self, graph, clock):
        # The paper's example: weight=3.0 AND color=red on one edge.
        build_pair(graph, clock)
        graph.set_edge_property("a", "e", "weight", 3.0, clock.tick())
        graph.set_edge_property("a", "e", "color", "red", clock.tick())
        edge = graph.at(clock.tick()).vertex("a").get_edge("e")
        assert edge.properties() == {"weight": 3.0, "color": "red"}


class TestSnapshots:
    def test_snapshot_is_stable_under_later_writes(self, graph, clock):
        ts = build_pair(graph, clock)
        view = graph.at(ts)
        graph.delete_edge("a", "e", clock.tick())
        graph.set_vertex_property("a", "color", "red", clock.tick())
        assert view.vertex("a").out_degree() == 1
        assert view.vertex("a").get_property("color") is None

    def test_historical_view_of_property(self, graph, clock):
        graph.create_vertex("a", clock.tick())
        graph.set_vertex_property("a", "v", 1, clock.tick())
        old = clock.tick()
        graph.set_vertex_property("a", "v", 2, clock.tick())
        assert graph.at(old).vertex("a").get_property("v") == 1
        assert graph.at(clock.tick()).vertex("a").get_property("v") == 2

    def test_vertex_missing_in_early_snapshot(self, graph, clock):
        early = clock.tick()
        graph.create_vertex("a", clock.tick())
        assert not graph.at(early).has_vertex("a")
        with pytest.raises(NoSuchVertex):
            graph.at(early).vertex("a")

    def test_vertices_iterates_visible_only(self, graph, clock):
        graph.create_vertex("a", clock.tick())
        graph.create_vertex("b", clock.tick())
        graph.delete_vertex("b", clock.tick())
        view = graph.at(clock.tick())
        assert [v.handle for v in view.vertices()] == ["a"]

    def test_counts(self, graph, clock):
        ts = build_pair(graph, clock)
        view = graph.at(ts)
        assert view.vertex_count() == 2
        assert view.edge_count() == 1

    def test_get_missing_edge_returns_none(self, graph, clock):
        ts = build_pair(graph, clock)
        assert graph.at(ts).vertex("a").get_edge("ghost") is None

    def test_deleted_edge_invisible_via_get_edge(self, graph, clock):
        build_pair(graph, clock)
        graph.delete_edge("a", "e", clock.tick())
        view = graph.at(clock.tick())
        assert view.vertex("a").get_edge("e") is None


class TestIncarnations:
    """Re-created handles must not destroy their predecessors' history
    (regression tests for bugs found by the property suite)."""

    def test_recreated_vertex_keeps_old_incarnation_visible(
        self, graph, clock
    ):
        graph.create_vertex("a", clock.tick())
        graph.set_vertex_property("a", "gen", 1, clock.tick())
        old_snapshot = clock.tick()
        graph.delete_vertex("a", clock.tick())
        graph.create_vertex("a", clock.tick())
        graph.set_vertex_property("a", "gen", 2, clock.tick())
        now = clock.tick()
        assert graph.at(old_snapshot).vertex("a").get_property("gen") == 1
        assert graph.at(now).vertex("a").get_property("gen") == 2

    def test_gap_between_incarnations_shows_nothing(self, graph, clock):
        graph.create_vertex("a", clock.tick())
        graph.delete_vertex("a", clock.tick())
        gap = clock.tick()
        graph.create_vertex("a", clock.tick())
        assert not graph.at(gap).has_vertex("a")

    def test_recreated_edge_keeps_old_incarnation_visible(
        self, graph, clock
    ):
        build_pair(graph, clock)
        graph.set_edge_property("a", "e", "gen", 1, clock.tick())
        old_snapshot = clock.tick()
        graph.delete_edge("a", "e", clock.tick())
        graph.create_edge("e", "a", "b", clock.tick())
        now = clock.tick()
        old_edge = graph.at(old_snapshot).vertex("a").get_edge("e")
        assert old_edge is not None and old_edge.get_property("gen") == 1
        new_edge = graph.at(now).vertex("a").get_edge("e")
        assert new_edge is not None and new_edge.get_property("gen") is None

    def test_live_duplicate_edge_still_rejected(self, graph, clock):
        build_pair(graph, clock)
        with pytest.raises(ValueError):
            graph.create_edge("e", "a", "b", clock.tick())

    def test_gc_reclaims_archived_incarnations(self, graph, clock):
        graph.create_vertex("a", clock.tick())
        graph.delete_vertex("a", clock.tick())
        graph.create_vertex("a", clock.tick())
        before = graph.version_count()
        graph.collect_below(clock.tick())
        assert graph.version_count() < before
        assert graph.at(clock.tick()).has_vertex("a")


class TestGarbageCollection:
    def test_collect_removes_dead_vertices(self, graph, clock):
        graph.create_vertex("a", clock.tick())
        graph.delete_vertex("a", clock.tick())
        watermark = clock.tick()
        reclaimed = graph.collect_below(watermark)
        assert reclaimed >= 1
        assert graph.raw_vertex("a") is None

    def test_collect_keeps_live_vertices(self, graph, clock):
        ts = build_pair(graph, clock)
        graph.collect_below(clock.tick())
        assert graph.at(clock.tick()).has_vertex("a")

    def test_collect_removes_dead_edges_only(self, graph, clock):
        build_pair(graph, clock)
        graph.create_edge("e2", "a", "b", clock.tick())
        graph.delete_edge("a", "e", clock.tick())
        graph.collect_below(clock.tick())
        view = graph.at(clock.tick())
        assert [e.handle for e in view.vertex("a").neighbors] == ["e2"]

    def test_collect_preserves_reads_at_watermark_and_later(self, graph, clock):
        graph.create_vertex("a", clock.tick())
        graph.set_vertex_property("a", "v", 1, clock.tick())
        graph.set_vertex_property("a", "v", 2, clock.tick())
        watermark = clock.tick()
        before = graph.at(watermark).vertex("a").get_property("v")
        graph.collect_below(watermark)
        assert graph.at(watermark).vertex("a").get_property("v") == before

    def test_collect_drops_superseded_property_versions(self, graph, clock):
        graph.create_vertex("a", clock.tick())
        for i in range(5):
            graph.set_vertex_property("a", "v", i, clock.tick())
        count_before = graph.version_count()
        graph.collect_below(clock.tick())
        assert graph.version_count() < count_before

    def test_collect_noop_on_live_data(self, graph, clock):
        ts = build_pair(graph, clock)
        assert graph.collect_below(ts) == 0


class TestIntrospection:
    def test_len_and_contains(self, graph, clock):
        graph.create_vertex("a", clock.tick())
        assert len(graph) == 1
        assert "a" in graph and "b" not in graph

    def test_version_count(self, graph, clock):
        build_pair(graph, clock)
        assert graph.version_count() == 3  # two vertices + one edge
