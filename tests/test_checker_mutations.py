"""Fault injection for the checkers themselves.

A verifier that never fires is indistinguishable from one that works.
Each test here hand-builds a minimal history containing exactly one
class of serializability violation — a duplicated timestamp, an apply
against the decided order, a stale or future or phantom read, a
real-time inversion — and asserts that BOTH checkers (offline
``HistoryChecker`` and streaming ``OnlineChecker``) convict it, with
the same violation kinds, under in-order and shuffled span delivery.
"""

import random

import pytest

from repro.core.oracle import TimelineOracle
from repro.core.vclock import VectorClock
from repro.obs.trace import Span
from repro.verify.history import History, HistoryChecker, decided_order
from repro.verify.online import OnlineChecker


def make_span(kind, at=0.0, **attrs):
    return Span(
        trace_id=None, kind=kind, at=at, node="synth", seq=0,
        attrs=tuple(attrs.items()),
    )


def store(ts, seq, at=0.0):
    return make_span(
        "store.commit", at=at, ts=ts, gk=ts.issuer, commit_seq=seq
    )


def txn(tag, ts, writes, submitted, acked):
    return make_span(
        "txn.commit", at=acked, tag=tag, ts=ts, writes=tuple(writes),
        submitted_at=submitted,
    )


def apply_span(shard, ts, seq, epoch=0, at=50.0):
    return make_span(
        "shard.apply", at=at, ts=ts, shard=shard, apply_seq=seq,
        epoch=epoch,
    )


def read_span(query_id, ts, reads, submitted, done):
    return make_span(
        "program.read", at=done, query_id=query_id, ts=ts,
        reads=tuple(reads), submitted_at=submitted,
    )


def verdicts(spans, compare):
    """Kind-sets from both checkers over the same stream."""
    history = History()
    online = OnlineChecker(compare)
    for span in spans:
        history.consume(span)
        online.consume(span)
    offline_kinds = {v.kind for v in HistoryChecker(history, compare).check()}
    online_kinds = {v.kind for v in online.finalize()}
    return offline_kinds, online_kinds


def convicts(spans, compare, expected, exact=True):
    """Both checkers must fire ``expected``, in order and shuffled."""
    rng = random.Random(42)
    streams = [list(spans)]
    for _ in range(2):
        shuffled = list(spans)
        rng.shuffle(shuffled)
        streams.append(shuffled)
    for stream in streams:
        offline_kinds, online_kinds = verdicts(stream, compare)
        assert expected in offline_kinds, (offline_kinds, stream)
        assert expected in online_kinds, (online_kinds, stream)
        if exact:
            assert offline_kinds == {expected}
            assert online_kinds == {expected}
        else:
            assert offline_kinds == online_kinds


class Mutations:
    """One constructor per violation class."""

    def __init__(self):
        self.oracle = TimelineOracle()
        self.compare = decided_order(self.oracle)
        self.clocks = [VectorClock(2, 0), VectorClock(2, 1)]


def test_duplicate_stamp_convicted():
    m = Mutations()
    ts = m.clocks[0].tick()
    spans = [
        store(ts, 1, at=1.0),
        txn(0, ts, [("x", 0)], submitted=0.0, acked=1.0),
        txn(1, ts, [("y", 1)], submitted=2.0, acked=3.0),
    ]
    convicts(spans, m.compare, "duplicate-stamp")


def test_commit_order_inversion_convicted():
    # Store serialized a before b, but the oracle decided b before a.
    # Submissions overlap in real time, so only commit-order fires.
    m = Mutations()
    ts_a = m.clocks[0].tick()
    ts_b = m.clocks[1].tick()
    m.oracle.assign_order(ts_b, ts_a)
    spans = [
        store(ts_a, 1, at=10.0),
        txn(0, ts_a, [("x", 0)], submitted=0.0, acked=10.0),
        store(ts_b, 2, at=11.0),
        txn(1, ts_b, [("x", 1)], submitted=1.0, acked=11.0),
    ]
    convicts(spans, m.compare, "commit-order")


def test_reordered_apply_convicted():
    # a is decided before b (same issuer), but shard 0 applied b first.
    m = Mutations()
    ts_a = m.clocks[0].tick()
    ts_b = m.clocks[0].tick()
    spans = [
        store(ts_a, 1, at=1.0),
        txn(0, ts_a, [("x", 0)], submitted=0.0, acked=1.0),
        store(ts_b, 2, at=3.0),
        txn(1, ts_b, [("y", 1)], submitted=2.0, acked=3.0),
        apply_span(0, ts_b, seq=1),
        apply_span(0, ts_a, seq=2),
    ]
    convicts(spans, m.compare, "apply-order")


def test_stale_read_convicted():
    # The read's timestamp is decided after both writes, yet it observed
    # the older one.  It overlaps the newer write in real time, so the
    # only conviction is stale-read.
    m = Mutations()
    ts_0 = m.clocks[0].tick()
    ts_1 = m.clocks[0].tick()
    ts_read = m.clocks[0].tick()
    spans = [
        store(ts_0, 1, at=1.0),
        txn(0, ts_0, [("x", 0)], submitted=0.0, acked=1.0),
        store(ts_1, 2, at=4.0),
        txn(1, ts_1, [("x", 1)], submitted=2.0, acked=4.0),
        read_span(7, ts_read, [("x", 0)], submitted=3.0, done=5.0),
    ]
    convicts(spans, m.compare, "stale-read")


def test_future_read_convicted():
    # The read observed a write whose timestamp is decided after the
    # read's own.
    m = Mutations()
    ts_read = m.clocks[0].tick()
    ts_0 = m.clocks[0].tick()
    spans = [
        store(ts_0, 1, at=2.0),
        txn(0, ts_0, [("x", 0)], submitted=1.0, acked=2.0),
        read_span(7, ts_read, [("x", 0)], submitted=0.0, done=3.0),
    ]
    convicts(spans, m.compare, "future-read")


def test_phantom_read_convicted():
    # The read reports a tag no committed transaction wrote.
    m = Mutations()
    ts_0 = m.clocks[0].tick()
    ts_read = m.clocks[0].tick()
    spans = [
        store(ts_0, 1, at=2.0),
        txn(0, ts_0, [("x", 0)], submitted=1.0, acked=2.0),
        read_span(7, ts_read, [("x", 99)], submitted=1.5, done=3.0),
    ]
    convicts(spans, m.compare, "phantom-read")


def test_real_time_write_inversion_convicted():
    # a was acked before b was even submitted, yet the decided order
    # puts a after b.  The store serialized them in the decided order
    # (b first), so commit-order stays clean — the conviction is purely
    # the external-consistency clause.
    m = Mutations()
    ts_a = m.clocks[0].tick()
    ts_b = m.clocks[1].tick()
    m.oracle.assign_order(ts_b, ts_a)
    spans = [
        store(ts_b, 1, at=3.0),
        txn(1, ts_b, [("x", 1)], submitted=2.0, acked=3.0),
        store(ts_a, 2, at=1.0),
        txn(0, ts_a, [("x", 0)], submitted=0.0, acked=1.0),
    ]
    convicts(spans, m.compare, "real-time-write")


def test_real_time_read_convicted():
    # A write acked long before the read was submitted, but the read
    # observed older state.  The decided order is silent (the read's
    # stamp is concurrent with both writes and the oracle never ruled),
    # so only the real-time clause can convict — and must.
    m = Mutations()
    ts_0 = m.clocks[0].tick()
    ts_1 = m.clocks[0].tick()
    ts_read = m.clocks[1].tick()
    spans = [
        store(ts_0, 1, at=1.0),
        txn(0, ts_0, [("x", 0)], submitted=0.0, acked=1.0),
        store(ts_1, 2, at=2.0),
        txn(1, ts_1, [("x", 1)], submitted=1.5, acked=2.0),
        read_span(7, ts_read, [("x", 0)], submitted=5.0, done=6.0),
    ]
    convicts(spans, m.compare, "real-time-read")


def test_clean_history_acquitted():
    # Control: the same shapes with the inversion removed convict nobody.
    m = Mutations()
    ts_0 = m.clocks[0].tick()
    ts_1 = m.clocks[0].tick()
    ts_read = m.clocks[0].tick()
    spans = [
        store(ts_0, 1, at=1.0),
        txn(0, ts_0, [("x", 0)], submitted=0.0, acked=1.0),
        store(ts_1, 2, at=3.0),
        txn(1, ts_1, [("x", 1)], submitted=2.0, acked=3.0),
        apply_span(0, ts_0, seq=1),
        apply_span(0, ts_1, seq=2),
        read_span(7, ts_read, [("x", 1)], submitted=4.0, done=5.0),
    ]
    offline_kinds, online_kinds = verdicts(spans, m.compare)
    assert offline_kinds == set()
    assert online_kinds == set()


@pytest.mark.parametrize("watermark_first", (False, True))
def test_conviction_survives_watermark_pruning(watermark_first):
    # Settling half the history under a watermark must not lose the
    # evidence needed to convict the other half: a stale read arriving
    # after its observed write was pruned to a floor still fires.  The
    # evidence cache keeps the pruned write's tag and seq floor, so the
    # label stays fine-grained — "stale-read", not the "phantom-read"
    # downgrade the pre-evidence checker reported.
    m = Mutations()
    ts_0 = m.clocks[0].tick()
    ts_1 = m.clocks[0].tick()
    online = OnlineChecker(m.compare)
    writes = [
        store(ts_0, 1, at=1.0),
        txn(0, ts_0, [("x", 0)], submitted=0.0, acked=1.0),
        store(ts_1, 2, at=4.0),
        txn(1, ts_1, [("x", 1)], submitted=2.0, acked=4.0),
    ]
    for span in writes:
        online.consume(span)
    if watermark_first:
        online.advance_watermark(m.clocks[0].tick())
        assert online.stats.pruned > 0
        assert online.stats.evidence_records > 0
    ts_read = m.clocks[0].tick()
    online.consume(
        read_span(7, ts_read, [("x", 0)], submitted=3.0, done=5.0)
    )
    kinds = {v.kind for v in online.finalize()}
    assert kinds == {"stale-read"}
    if watermark_first:
        assert online.stats.evidence_hits > 0


def test_store_seq_survives_pruning_for_late_commit():
    # Deadline-delayed acks make the client's txn.commit span trail the
    # store.commit span by up to a region reach; a GC tick between them
    # used to prune the queued store seq, leaving the online checker a
    # provisional arrival-index seq while History joined the real one —
    # a digest mismatch with no real violation.  The evidence cache now
    # retains pruned store seqs for exactly this join.
    m = Mutations()
    ts = m.clocks[0].tick()
    history = History()
    online = OnlineChecker(m.compare)
    first = store(ts, 7, at=1.0)
    history.consume(first)
    online.consume(first)
    online.advance_watermark(m.clocks[0].tick())
    assert online.stats.pruned > 0
    late = txn(0, ts, [("x", 0)], submitted=0.0, acked=9.0)
    history.consume(late)
    online.consume(late)
    assert online.stats.evidence_hits > 0
    assert online.finalize() == []
    assert online.digest() == history.digest()


def test_evidence_cache_seq_namespace_roundtrip():
    from repro.verify.online import EvidenceCache

    cache = EvidenceCache(capacity=2)
    cache.record_seqs((0, 0, 1), [4, 5])
    assert cache.take_seq((0, 0, 1)) == 4
    assert cache.take_seq((0, 0, 1)) == 5
    assert cache.take_seq((0, 0, 1)) is None
    # Capacity bounds the seq namespace with insertion-order eviction.
    cache.record_seqs((0, 0, 2), [1])
    cache.record_seqs((0, 0, 3), [2])
    cache.record_seqs((0, 0, 4), [3])
    assert cache.take_seq((0, 0, 2)) is None  # evicted
    assert cache.take_seq((0, 0, 4)) == 3


def test_phantom_read_still_fires_for_unknown_tag():
    # The evidence cache must not blunt the phantom conviction: a tag
    # nobody ever committed (pruned or not) is still a phantom.
    m = Mutations()
    ts_0 = m.clocks[0].tick()
    online = OnlineChecker(m.compare)
    online.consume(store(ts_0, 1, at=1.0))
    online.consume(txn(0, ts_0, [("x", 0)], submitted=0.0, acked=1.0))
    online.advance_watermark(m.clocks[0].tick())
    ts_read = m.clocks[0].tick()
    online.consume(
        read_span(9, ts_read, [("x", 999)], submitted=3.0, done=5.0)
    )
    kinds = {v.kind for v in online.finalize()}
    assert "phantom-read" in kinds
