"""Workload generators: graphs, the TAO mix, the synthetic blockchain."""

import pytest

from repro.workloads import bitcoin, graphs
from repro.workloads.runner import run_tao
from repro.workloads.tao import (
    READ_MIX,
    TAO_READ_FRACTION,
    TaoWorkload,
    WRITE_MIX,
)


class TestGraphGenerators:
    def test_powerlaw_deterministic(self):
        a = graphs.powerlaw_graph(50, 3, seed=1)
        b = graphs.powerlaw_graph(50, 3, seed=1)
        assert a == b

    def test_powerlaw_seed_changes_graph(self):
        assert graphs.powerlaw_graph(50, 3, seed=1) != graphs.powerlaw_graph(
            50, 3, seed=2
        )

    def test_powerlaw_has_skewed_in_degree(self):
        edges = graphs.powerlaw_graph(500, 3, seed=3)
        indeg = {}
        for _, dst in edges:
            indeg[dst] = indeg.get(dst, 0) + 1
        degrees = sorted(indeg.values(), reverse=True)
        # The hottest vertex has far more than the mean in-degree.
        assert degrees[0] > 5 * (len(edges) / len(indeg))

    def test_powerlaw_vertex_count(self):
        edges = graphs.powerlaw_graph(100, 2, seed=4)
        assert len(graphs.vertices_of(edges)) == 100

    def test_powerlaw_no_dangling_targets(self):
        edges = graphs.powerlaw_graph(50, 3, seed=5)
        names = set(graphs.vertices_of(edges))
        assert all(src in names and dst in names for src, dst in edges)

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            graphs.powerlaw_graph(1)

    def test_uniform_graph_counts(self):
        edges = graphs.uniform_graph(30, 40, seed=6)
        assert len(edges) == 40
        assert len(set(edges)) == 40  # no duplicates

    def test_uniform_no_self_loops(self):
        edges = graphs.uniform_graph(10, 30, seed=7)
        assert all(src != dst for src, dst in edges)

    def test_adjacency(self):
        adj = graphs.adjacency([("a", "b"), ("a", "c")])
        assert adj["a"] == ["b", "c"]
        assert adj["b"] == []

    def test_load_into_weaver(self, client):
        edges = [("a", "b"), ("b", "c")]
        handles = graphs.load_into_weaver(client, edges, batch_size=1)
        assert set(handles) == {"a->b", "b->c"}
        assert client.reachable("a", "c")

    def test_load_with_edge_prop(self, client):
        handles = graphs.load_into_weaver(
            client, [("a", "b")], edge_prop="follows"
        )
        assert client.count_edges("a", edge_prop="follows") == 1


class TestTaoWorkload:
    def test_mixes_sum_to_one(self):
        assert sum(w for _, w in READ_MIX) == pytest.approx(1.0)
        assert sum(w for _, w in WRITE_MIX) == pytest.approx(1.0)

    def test_deterministic_stream(self):
        a = list(TaoWorkload(["v0", "v1"], seed=1).stream(50))
        b = list(TaoWorkload(["v0", "v1"], seed=1).stream(50))
        assert a == b

    def test_read_fraction_respected(self):
        workload = TaoWorkload(["v"], read_fraction=0.5, seed=2)
        reads = sum(
            1
            for op in workload.stream(2000)
            if op[0] in ("get_edges", "count_edges", "get_node")
        )
        assert 0.45 < reads / 2000 < 0.55

    def test_table1_read_proportions(self):
        workload = TaoWorkload(["v"], read_fraction=1.0, seed=3)
        counts = {}
        for op in workload.stream(5000):
            counts[op[0]] = counts.get(op[0], 0) + 1
        assert counts["get_edges"] / 5000 == pytest.approx(0.594, abs=0.05)
        assert counts["count_edges"] / 5000 == pytest.approx(0.117, abs=0.05)
        assert counts["get_node"] / 5000 == pytest.approx(0.289, abs=0.05)

    def test_write_proportions(self):
        pool = [(f"v{i}", f"e{i}") for i in range(10000)]
        workload = TaoWorkload(
            ["v"], edge_pool=pool, read_fraction=0.0, seed=4
        )
        counts = {}
        for op in workload.stream(2000):
            counts[op[0]] = counts.get(op[0], 0) + 1
        assert counts["create_edge"] / 2000 == pytest.approx(0.8, abs=0.05)
        assert counts["delete_edge"] / 2000 == pytest.approx(0.2, abs=0.05)

    def test_delete_without_pool_becomes_create(self):
        workload = TaoWorkload(["v"], read_fraction=0.0, seed=5)
        ops = list(workload.stream(50))
        assert all(op[0] == "create_edge" for op in ops)

    def test_created_edges_become_deletable(self):
        workload = TaoWorkload(["v"], read_fraction=0.0, seed=6)
        workload.note_created("v", "e0")
        kinds = {op[0] for op in workload.stream(100)}
        assert "delete_edge" in kinds

    def test_default_read_fraction_is_tao(self):
        assert TaoWorkload(["v"]).read_fraction == TAO_READ_FRACTION

    def test_empty_vertices_rejected(self):
        with pytest.raises(ValueError):
            TaoWorkload([])

    def test_bad_read_fraction_rejected(self):
        with pytest.raises(ValueError):
            TaoWorkload(["v"], read_fraction=1.5)


class TestRunTao:
    def test_functional_run_reports(self, client):
        graphs.load_into_weaver(client, [("a", "b"), ("b", "c")])
        workload = TaoWorkload(["a", "b", "c"], seed=7)
        report = run_tao(client, workload, 30)
        assert report.operations == 30
        assert report.failures == 0
        assert sum(report.counts.values()) == 30
        assert report.reactive_fraction == 0.0  # announce_every=1


class TestBlockchain:
    def test_growth_curve_monotone(self):
        counts = [bitcoin.txs_in_block(h) for h in (1000, 100000, 350000)]
        assert counts == sorted(counts)
        assert counts[0] >= 1

    def test_calibration_point(self):
        assert bitcoin.txs_in_block(350_000) == 1795

    def test_generator_deterministic(self):
        a = bitcoin.BlockchainGenerator(seed=1, scale=0.01).generate([1000])
        b = bitcoin.BlockchainGenerator(seed=1, scale=0.01).generate([1000])
        assert a[0].transactions[0].tx_id == b[0].transactions[0].tx_id
        assert a[0].transactions[0].value == b[0].transactions[0].value

    def test_scale_shrinks_blocks(self):
        gen = bitcoin.BlockchainGenerator(scale=0.01)
        assert gen.txs_for(350_000) == round(1795 * 0.01)

    def test_block_header(self):
        gen = bitcoin.BlockchainGenerator(scale=0.01)
        block = gen.generate_block(5000)
        assert block.header()["height"] == 5000
        assert block.header()["n_tx"] == len(block.transactions)

    def test_spends_reference_earlier_txs(self):
        gen = bitcoin.BlockchainGenerator(seed=2, scale=0.05)
        blocks = gen.generate([100_000, 101_000])
        seen = set()
        for block in blocks:
            for tx in block.transactions:
                assert all(s in seen for s in tx.spends)
                seen.add(tx.tx_id)

    def test_load_into_weaver_and_render(self, client):
        gen = bitcoin.BlockchainGenerator(seed=3, scale=0.01)
        blocks = gen.generate([200_000])
        bitcoin.load_into_weaver(client, blocks)
        rendered = client.render_block(blocks[0].block_id)
        assert rendered["n_tx"] == len(blocks[0].transactions)

    def test_load_with_spend_edges(self, client):
        gen = bitcoin.BlockchainGenerator(seed=4, scale=0.02)
        blocks = gen.generate([150_000, 151_000])
        bitcoin.load_into_weaver(client, blocks, with_spend_edges=True)
        # Some transaction must have an outgoing spends edge.
        total_spend_edges = sum(
            len(client.get_edges(tx.tx_id, edge_prop="spends"))
            for block in blocks
            for tx in block.transactions
        )
        assert total_spend_edges > 0

    def test_load_into_explorer(self):
        from repro.baselines.blockchain_info import RelationalExplorer

        gen = bitcoin.BlockchainGenerator(seed=5, scale=0.02)
        blocks = gen.generate([200_000])
        explorer = RelationalExplorer()
        bitcoin.load_into_explorer(explorer, blocks)
        result, _ = explorer.render_block(blocks[0].block_id)
        assert result["n_tx"] == len(blocks[0].transactions)

    def test_zero_scale_rejected(self):
        with pytest.raises(ValueError):
            bitcoin.BlockchainGenerator(scale=0)
