"""Heavier property-based suites on the system's core invariants.

These complement the per-module hypothesis tests with whole-subsystem
properties: the multi-version graph against a model interpreter, the
refinable order's global consistency across many independent shards,
snapshot stability under arbitrary later writes, and GC harmlessness.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core.gatekeeper import Gatekeeper, sync_announce_all
from repro.core.oracle import TimelineOracle
from repro.core.ordering import RefinableOrdering
from repro.core.vclock import Ordering, VectorClock
from repro.db import Weaver, WeaverClient, WeaverConfig
from repro.errors import TransactionAborted
from repro.graph.mvgraph import MultiVersionGraph

# ---------------------------------------------------------------------------
# Multi-version graph vs. a last-write-wins model interpreter
# ---------------------------------------------------------------------------

VERTS = ["a", "b", "c"]

graph_ops = st.lists(
    st.tuples(
        st.sampled_from(
            ["create_v", "delete_v", "create_e", "delete_e", "set_p"]
        ),
        st.integers(0, 2),
        st.integers(0, 2),
        st.integers(0, 9),
    ),
    min_size=1,
    max_size=40,
)


def _interpret(ops):
    """Apply ops to both the MV graph and a plain model; skip invalid
    ops identically in both worlds."""
    clock = VectorClock(1, 0)
    graph = MultiVersionGraph()
    model = {}  # handle -> {"props": {...}, "edges": {name: dst}}
    for kind, i, j, val in ops:
        v, w = VERTS[i], VERTS[j]
        edge_name = f"{v}->{w}"
        ts = clock.tick()
        if kind == "create_v" and v not in model:
            graph.create_vertex(v, ts)
            model[v] = {"props": {}, "edges": {}}
        elif kind == "delete_v" and v in model:
            graph.delete_vertex(v, ts)
            del model[v]
        elif (
            kind == "create_e"
            and v in model
            and edge_name not in model[v]["edges"]
        ):
            graph.create_edge(edge_name, v, w, ts)
            model[v]["edges"][edge_name] = w
        elif (
            kind == "delete_e"
            and v in model
            and edge_name in model[v]["edges"]
        ):
            graph.delete_edge(v, edge_name, ts)
            del model[v]["edges"][edge_name]
        elif kind == "set_p" and v in model:
            graph.set_vertex_property(v, "p", val, ts)
            model[v]["props"]["p"] = val
    return graph, model, clock


@settings(max_examples=60, deadline=None)
@given(graph_ops)
def test_mvgraph_latest_snapshot_matches_model(ops):
    graph, model, clock = _interpret(ops)
    view = graph.at(clock.tick())
    assert {v.handle for v in view.vertices()} == set(model)
    for handle, record in model.items():
        vertex = view.vertex(handle)
        assert vertex.properties() == record["props"]
        assert {
            e.handle: e.nbr for e in vertex.neighbors
        } == record["edges"]


@settings(max_examples=40, deadline=None)
@given(graph_ops, graph_ops)
def test_mvgraph_snapshots_immune_to_later_writes(prefix, suffix):
    """A snapshot taken after ``prefix`` reads the same regardless of
    what ``suffix`` does afterwards."""
    graph, model, clock = _interpret(prefix)
    snap_ts = clock.tick()

    def read(ts):
        view = graph.at(ts)
        return {
            v.handle: (
                v.properties().get("p"),
                tuple(sorted(e.handle for e in v.neighbors)),
            )
            for v in view.vertices()
        }

    before = read(snap_ts)
    # Replay the suffix on top (same clock, same graph).
    for kind, i, j, val in suffix:
        v, w = VERTS[i], VERTS[j]
        edge_name = f"{v}->{w}"
        ts = clock.tick()
        try:
            if kind == "create_v":
                graph.create_vertex(v, ts)
            elif kind == "delete_v":
                graph.delete_vertex(v, ts)
            elif kind == "create_e":
                graph.create_edge(f"{edge_name}+", v, w, ts)
            elif kind == "delete_e":
                graph.delete_edge(v, edge_name, ts)
            else:
                graph.set_vertex_property(v, "p", val + 100, ts)
        except Exception:
            pass
    assert read(snap_ts) == before


@settings(max_examples=40, deadline=None)
@given(graph_ops)
def test_gc_never_changes_the_watermark_view(ops):
    graph, model, clock = _interpret(ops)
    watermark = clock.tick()
    view_before = {
        v.handle: v.properties().get("p")
        for v in graph.at(watermark).vertices()
    }
    graph.collect_below(watermark)
    view_after = {
        v.handle: v.properties().get("p")
        for v in graph.at(watermark).vertices()
    }
    assert view_before == view_after


# ---------------------------------------------------------------------------
# Refinable order: many shards, one oracle, one consistent world order
# ---------------------------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 2), st.booleans()),
        min_size=4,
        max_size=24,
    ),
    st.integers(2, 4),
)
def test_shards_never_disagree_on_any_pair(script, num_shards):
    """Each shard independently compares random stamp pairs (with its
    own cache and arrival-order preferences); all answers must embed
    into one total order because the oracle is shared."""
    gatekeepers = [Gatekeeper(i, 3) for i in range(3)]
    stamps = []
    for gk_index, announce in script:
        stamps.append(gatekeepers[gk_index].issue_timestamp())
        if announce:
            sync_announce_all(gatekeepers)
    oracle = TimelineOracle()
    shards = [RefinableOrdering(oracle) for _ in range(num_shards)]
    rng = random.Random(7)
    decided = {}
    for _ in range(60):
        shard = shards[rng.randrange(num_shards)]
        a, b = rng.sample(stamps, 2) if len(stamps) >= 2 else (None, None)
        if a is None or a.id == b.id:
            continue
        prefer = (
            Ordering.BEFORE if rng.random() < 0.5 else Ordering.AFTER
        )
        answer = shard.compare(a, b, prefer=prefer)
        key = (a.id, b.id)
        if key in decided:
            assert answer is decided[key]
        decided[key] = answer
        decided[(b.id, a.id)] = answer.flipped()


# ---------------------------------------------------------------------------
# End-to-end: random committed workloads replay sequentially
# ---------------------------------------------------------------------------

end_to_end_ops = st.lists(
    st.tuples(st.integers(0, 3), st.integers(0, 3), st.integers(0, 5)),
    min_size=1,
    max_size=25,
)


@settings(max_examples=15, deadline=None)
@given(end_to_end_ops, st.integers(1, 6))
def test_final_state_equals_commit_order_replay(ops, announce_every):
    db = Weaver(
        WeaverConfig(
            num_gatekeepers=2, num_shards=2, announce_every=announce_every
        )
    )
    client = WeaverClient(db)
    names = [f"v{i}" for i in range(4)]
    with client.transaction() as tx:
        for name in names:
            tx.create_vertex(name)
    committed = []
    for i, j, val in ops:
        try:
            client.set_property(names[i], f"k{j}", val)
            committed.append((names[i], f"k{j}", val))
        except TransactionAborted:
            pass
    replay = {}
    for name, key, val in committed:
        replay.setdefault(name, {})[key] = val
    for name in names:
        assert client.get_node(name)["properties"] == replay.get(name, {})
