"""The baseline systems: Titan-like 2PL/2PC, GraphLab-like GAS,
Blockchain.info-like relational explorer."""

import pytest

from repro.baselines.blockchain_info import RelationalExplorer
from repro.baselines.graphlab import BfsProgram, GraphLab
from repro.baselines.titan import TitanGraph
from repro.bench.costmodel import CostParams
from repro.errors import NoSuchVertex, TransactionAborted


class TestTitanFunctional:
    def make(self):
        titan = TitanGraph(num_shards=2)
        titan.execute([("create_vertex", "a")], 0.0)
        titan.execute([("create_vertex", "b")], 0.0)
        return titan

    def test_create_vertex_and_edge(self):
        titan = self.make()
        titan.execute([("create_edge", "e", "a", "b")], 0.0)
        node, _ = titan.get_node("a", 0.0)
        assert node["out_degree"] == 1

    def test_duplicate_vertex_aborts(self):
        titan = self.make()
        with pytest.raises(TransactionAborted):
            titan.execute([("create_vertex", "a")], 0.0)
        assert titan.stats.aborts == 1

    def test_edge_to_missing_destination_aborts(self):
        titan = self.make()
        with pytest.raises(TransactionAborted):
            titan.execute([("create_edge", "e", "a", "ghost")], 0.0)

    def test_delete_edge(self):
        titan = self.make()
        titan.execute([("create_edge", "e", "a", "b")], 0.0)
        titan.execute([("delete_edge", "a", "e")], 0.0)
        count, _ = titan.count_edges("a", 0.0)
        assert count == 0

    def test_properties(self):
        titan = self.make()
        titan.execute([("set_vertex_property", "a", "k", 1)], 0.0)
        titan.execute([("create_edge", "e", "a", "b")], 0.0)
        titan.execute([("set_edge_property", "a", "e", "w", 2)], 0.0)
        node, _ = titan.get_node("a", 0.0)
        edges, _ = titan.get_edges("a", 0.0)
        assert node["properties"] == {"k": 1}
        assert edges[0]["properties"] == {"w": 2}

    def test_read_missing_vertex_raises(self):
        titan = self.make()
        with pytest.raises(NoSuchVertex):
            titan.get_node("ghost", 0.0)

    def test_load_and_reachability(self):
        titan = TitanGraph()
        titan.load([("a", "b"), ("b", "c")])
        assert titan.reachable("a", "c")
        assert not titan.reachable("c", "a")

    def test_unknown_operation_rejected(self):
        titan = self.make()
        with pytest.raises(ValueError):
            titan.execute([("explode",)], 0.0)


class TestTitanCostModel:
    def test_operations_take_time(self):
        titan = TitanGraph()
        finish = titan.execute([("create_vertex", "a")], 0.0)
        assert finish > 0.0

    def test_coordinator_serializes_throughput(self):
        # Back-to-back transactions queue at the coordinator: the gap
        # between completions converges to the coordinator service time.
        titan = TitanGraph()
        costs = titan.costs
        finishes = [
            titan.execute([("create_vertex", f"v{i}")], 0.0)
            for i in range(20)
        ]
        gaps = [b - a for a, b in zip(finishes, finishes[1:])]
        assert gaps[-1] == pytest.approx(
            costs.titan_coordinator_service, rel=0.01
        )

    def test_conflicting_transactions_wait_for_locks(self):
        # The lock-wait path: a transaction whose lock point falls inside
        # another's hold window is delayed to the hold's end.
        titan = TitanGraph()
        titan.execute([("create_vertex", "a")], 0.0)
        titan.locks.hold_until("a", 1.0)  # a long-running holder
        t = titan.execute([("set_vertex_property", "a", "k", 1)], 0.0)
        assert t > 1.0
        assert titan.locks.contention_rate > 0

    def test_serial_transactions_spaced_by_coordinator_not_locks(self):
        # With one coordinator at 500 us per transaction, same-object
        # transactions are already spaced past each other's lock holds:
        # the coordinator, not the lock table, is Titan's bottleneck.
        titan = TitanGraph()
        titan.execute([("create_vertex", "a")], 0.0)
        t1 = titan.execute([("set_vertex_property", "a", "k", 1)], 0.0)
        t2 = titan.execute([("set_vertex_property", "a", "k", 2)], 0.0)
        assert t2 - t1 == pytest.approx(
            titan.costs.titan_coordinator_service, rel=0.01
        )

    def test_reads_also_pay_coordination(self):
        titan = TitanGraph()
        titan.execute([("create_vertex", "a")], 0.0)
        _, t_read = titan.get_node("a", 0.0)
        assert t_read >= titan.costs.rtt


class TestGraphLab:
    EDGES = [("a", "b"), ("b", "c"), ("a", "c"), ("c", "d")]

    def test_sync_and_async_agree_with_reference(self):
        for mode in ("sync", "async"):
            engine = GraphLab(mode=mode)
            engine.load(self.EDGES)
            for src in "abcd":
                for dst in "abcd":
                    got, _ = engine.reachability(src, dst)
                    assert got == engine.reachable_reference(src, dst), (
                        mode, src, dst,
                    )

    def test_bfs_distances(self):
        engine = GraphLab(mode="sync")
        engine.load(self.EDGES)
        distances, _ = engine.bfs_distances("a")
        assert distances["a"] == 0
        assert distances["b"] == 1
        assert distances["d"] == 2

    def test_unknown_source_unreachable(self):
        engine = GraphLab()
        engine.load(self.EDGES)
        reached, _ = engine.reachability("ghost", "a")
        assert not reached

    def test_sync_pays_barrier_per_round(self):
        costs = CostParams()
        engine = GraphLab(mode="sync", costs=costs)
        engine.load(self.EDGES)
        _, finish = engine.bfs_distances("a")
        # Three propagation waves minimum -> at least 3 barriers.
        assert finish >= 3 * costs.barrier_cost

    def test_async_faster_than_sync_on_deep_graphs(self):
        chain = [(f"n{i}", f"n{i+1}") for i in range(30)]
        sync = GraphLab(mode="sync")
        sync.load(chain)
        _, t_sync = sync.reachability("n0", "n30")
        async_engine = GraphLab(mode="async")
        async_engine.load(chain)
        _, t_async = async_engine.reachability("n0", "n30")
        assert t_async < t_sync

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            GraphLab(mode="warp")

    def test_updates_counted(self):
        engine = GraphLab(mode="sync")
        engine.load(self.EDGES)
        engine.bfs_distances("a")
        assert engine.updates > 0


class TestRelationalExplorer:
    def make(self):
        explorer = RelationalExplorer()
        explorer.insert_block("blk1", {"height": 1})
        for i in range(3):
            explorer.insert_transaction(f"t{i}", "blk1", {"value": i})
        return explorer

    def test_render_block_contents(self):
        explorer = self.make()
        result, _ = explorer.render_block("blk1")
        assert result["n_tx"] == 3
        assert {row["tx"] for row in result["transactions"]} == {
            "t0", "t1", "t2",
        }

    def test_latency_linear_in_transactions(self):
        explorer = self.make()
        _, t3 = explorer.render_block("blk1")
        explorer.insert_block("blk2", {"height": 2})
        _, t0 = explorer.render_block("blk2")
        costs = explorer.costs
        assert t3 - t0 == pytest.approx(3 * costs.sql_row_service)

    def test_wan_latency_charged(self):
        explorer = self.make()
        explorer.insert_block("empty", {"height": 3})
        _, t = explorer.render_block("empty")
        assert t == pytest.approx(2 * explorer.costs.wan_latency)

    def test_unknown_block_raises(self):
        with pytest.raises(KeyError):
            self.make().render_block("ghost")

    def test_transaction_for_unknown_block_raises(self):
        explorer = RelationalExplorer()
        with pytest.raises(KeyError):
            explorer.insert_transaction("t", "ghost", {})

    def test_counters(self):
        explorer = self.make()
        explorer.render_block("blk1")
        assert explorer.queries == 1
        assert explorer.rows_joined == 3
        assert explorer.num_blocks == 1
        assert explorer.num_transactions == 3
