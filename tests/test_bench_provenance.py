"""Provenance rules for the archived transport bench recordings.

``BENCH_transport.json`` is the evidence file for the scaling and
shard-resident speedup claims; its numbers only mean something with the
``cpu_count`` they were measured on.  :func:`record_bench` therefore
refuses to let a small host's run overwrite a recording from a
qualifying (>= 4-core) host, merges sections independently, and adopts
the legacy flat layout in place.
"""

import json

from repro.bench.transport_bench import MIN_MEANINGFUL_CORES, record_bench


def _result(cores, **extra):
    return {"cpu_count": cores, "speedup": 1.0, **extra}


class TestRecordBench:
    def test_fresh_file_records_any_host(self, tmp_path):
        path = tmp_path / "bench.json"
        assert record_bench(path, "resident", _result(1))
        assert json.loads(path.read_text())["resident"]["cpu_count"] == 1

    def test_small_host_cannot_overwrite_qualifying_recording(
        self, tmp_path
    ):
        path = tmp_path / "bench.json"
        assert record_bench(
            path, "resident", _result(MIN_MEANINGFUL_CORES, speedup=2.4)
        )
        assert not record_bench(path, "resident", _result(1, speedup=0.6))
        kept = json.loads(path.read_text())["resident"]
        assert kept["cpu_count"] == MIN_MEANINGFUL_CORES
        assert kept["speedup"] == 2.4

    def test_qualifying_host_refreshes_and_small_hosts_swap_freely(
        self, tmp_path
    ):
        path = tmp_path / "bench.json"
        assert record_bench(path, "scaling", _result(1))
        assert record_bench(path, "scaling", _result(2))  # 2 > 1: allowed
        assert record_bench(
            path, "scaling", _result(MIN_MEANINGFUL_CORES + 4)
        )
        assert record_bench(
            path, "scaling", _result(MIN_MEANINGFUL_CORES)
        )
        assert json.loads(path.read_text())["scaling"]["cpu_count"] == (
            MIN_MEANINGFUL_CORES
        )

    def test_sections_are_independent(self, tmp_path):
        path = tmp_path / "bench.json"
        assert record_bench(
            path, "scaling", _result(MIN_MEANINGFUL_CORES)
        )
        # A 1-core resident recording lands even though the scaling
        # section is protected.
        assert record_bench(path, "resident", _result(1))
        data = json.loads(path.read_text())
        assert data["scaling"]["cpu_count"] == MIN_MEANINGFUL_CORES
        assert data["resident"]["cpu_count"] == 1

    def test_legacy_flat_layout_adopted_as_scaling_section(self, tmp_path):
        path = tmp_path / "bench.json"
        legacy = {"cpu_count": 1, "points": [{"shards": 1}]}
        path.write_text(json.dumps(legacy))
        assert record_bench(path, "resident", _result(1))
        data = json.loads(path.read_text())
        assert data["scaling"]["points"] == [{"shards": 1}]
        assert data["resident"]["cpu_count"] == 1
