"""Client-side transactions: the weaver_tx block."""

import pytest

from repro.errors import (
    NoSuchEdge,
    NoSuchVertex,
    TransactionAborted,
    TransactionError,
)


class TestBasics:
    def test_commit_returns_timestamp(self, db):
        tx = db.begin_transaction()
        tx.create_vertex("a")
        ts = tx.commit()
        assert ts is not None
        assert tx.timestamp == ts

    def test_generated_handles_unique(self, db):
        tx = db.begin_transaction()
        handles = {tx.create_vertex() for _ in range(10)}
        assert len(handles) == 10
        tx.commit()

    def test_create_node_alias(self, db):
        tx = db.begin_transaction()
        handle = tx.create_node("n")
        assert handle == "n"
        tx.commit()

    def test_len_counts_operations(self, db):
        tx = db.begin_transaction()
        tx.create_vertex("a")
        tx.create_vertex("b")
        tx.create_edge("a", "b")
        assert len(tx) == 3
        tx.commit()

    def test_touched_vertices(self, db):
        tx = db.begin_transaction()
        tx.create_vertex("a")
        tx.create_vertex("b")
        tx.create_edge("a", "b", "e")
        assert tx.touched_vertices == frozenset(["a", "b"])
        tx.commit()


class TestReadYourWrites:
    def test_created_vertex_readable_in_tx(self, db):
        tx = db.begin_transaction()
        tx.create_vertex("a")
        assert tx.vertex_exists("a")
        assert tx.get_vertex("a") == {}
        tx.abort()

    def test_property_readable_in_tx(self, db):
        tx = db.begin_transaction()
        tx.create_vertex("a")
        tx.set_property("a", "k", 5)
        assert tx.get_vertex("a") == {"k": 5}
        tx.abort()

    def test_edge_readable_in_tx(self, db):
        tx = db.begin_transaction()
        tx.create_vertex("a")
        tx.create_vertex("b")
        tx.create_edge("a", "b", "e")
        tx.set_edge_property("a", "e", "w", 1)
        assert tx.get_edge("a", "e") == {"dst": "b", "props": {"w": 1}}
        tx.abort()

    def test_get_missing_vertex_raises(self, db):
        tx = db.begin_transaction()
        with pytest.raises(NoSuchVertex):
            tx.get_vertex("ghost")
        tx.abort()

    def test_get_missing_edge_raises(self, db):
        tx = db.begin_transaction()
        tx.create_vertex("a")
        with pytest.raises(NoSuchEdge):
            tx.get_edge("a", "ghost")
        tx.abort()


class TestValidity:
    def test_delete_missing_vertex_aborts_immediately(self, db):
        tx = db.begin_transaction()
        with pytest.raises(TransactionAborted):
            tx.delete_vertex("ghost")

    def test_double_create_in_tx_aborts(self, db):
        tx = db.begin_transaction()
        tx.create_vertex("a")
        with pytest.raises(TransactionAborted):
            tx.create_vertex("a")

    def test_edge_to_missing_destination_aborts(self, db):
        tx = db.begin_transaction()
        tx.create_vertex("a")
        with pytest.raises(TransactionAborted):
            tx.create_edge("a", "missing")


class TestLifecycle:
    def test_commit_twice_raises(self, db):
        tx = db.begin_transaction()
        tx.create_vertex("a")
        tx.commit()
        with pytest.raises(TransactionError):
            tx.commit()

    def test_ops_after_commit_raise(self, db):
        tx = db.begin_transaction()
        tx.commit()
        with pytest.raises(TransactionError):
            tx.create_vertex("x")

    def test_abort_discards_writes(self, db, client):
        tx = db.begin_transaction()
        tx.create_vertex("a")
        tx.abort()
        tx2 = db.begin_transaction()
        assert not tx2.vertex_exists("a")
        tx2.abort()

    def test_context_manager_commits_on_success(self, db):
        with db.begin_transaction() as tx:
            tx.create_vertex("a")
        check = db.begin_transaction()
        assert check.vertex_exists("a")
        check.abort()

    def test_context_manager_aborts_on_exception(self, db):
        with pytest.raises(RuntimeError):
            with db.begin_transaction() as tx:
                tx.create_vertex("a")
                raise RuntimeError("boom")
        check = db.begin_transaction()
        assert not check.vertex_exists("a")
        check.abort()

    def test_is_open(self, db):
        tx = db.begin_transaction()
        assert tx.is_open
        tx.commit()
        assert not tx.is_open


class TestConflicts:
    def test_interleaved_same_vertex_writes_conflict(self, db):
        with db.begin_transaction() as setup:
            setup.create_vertex("a")
        tx1 = db.begin_transaction(gatekeeper=0)
        tx2 = db.begin_transaction(gatekeeper=1)
        tx1.set_property("a", "k", 1)
        tx2.set_property("a", "k", 2)
        tx1.commit()
        with pytest.raises(TransactionAborted):
            tx2.commit()

    def test_disjoint_transactions_both_commit(self, db):
        with db.begin_transaction() as setup:
            setup.create_vertex("a")
            setup.create_vertex("b")
        tx1 = db.begin_transaction(gatekeeper=0)
        tx2 = db.begin_transaction(gatekeeper=1)
        tx1.set_property("a", "k", 1)
        tx2.set_property("b", "k", 2)
        tx1.commit()
        tx2.commit()

    def test_paper_fig2_photo_post(self, db, client):
        """The paper's Fig 2: post a photo and set ACLs atomically."""
        with db.begin_transaction() as setup:
            setup.create_vertex("user")
            for i in range(3):
                setup.create_vertex(f"friend{i}")
        with db.begin_transaction() as tx:
            photo = tx.create_node()
            own = tx.create_edge("user", photo)
            tx.assign_property(own, "user", "OWNS")
            for i in range(2):
                acl = tx.create_edge(photo, f"friend{i}")
                tx.assign_property(acl, photo, "VISIBLE")
        edges = client.get_edges(photo)
        assert len(edges) == 2
        assert all(e["properties"].get("VISIBLE") for e in edges)
