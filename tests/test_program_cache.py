"""Node-program memoization and change-based invalidation (section 4.6)."""

import pytest

from repro.db import Weaver, WeaverClient, WeaverConfig
from repro.programs.caching import ChangeTracker, ProgramCache


@pytest.fixture
def tracker():
    return ChangeTracker()


@pytest.fixture
def cache(tracker):
    return ProgramCache(tracker, capacity=4)


class TestChangeTracker:
    def test_version_starts_at_zero(self, tracker):
        assert tracker.version("v") == 0

    def test_bump(self, tracker):
        tracker.bump("v")
        tracker.bump("v")
        assert tracker.version("v") == 2

    def test_bump_all(self, tracker):
        tracker.bump_all(["a", "b"])
        assert tracker.version("a") == 1 and tracker.version("b") == 1

    def test_snapshot_and_unchanged(self, tracker):
        tracker.bump("a")
        observed = tracker.snapshot(["a", "b"])
        assert tracker.unchanged(observed)
        tracker.bump("b")
        assert not tracker.unchanged(observed)


class TestProgramCache:
    def test_miss_then_hit(self, cache):
        key = ProgramCache.key("bfs", "a", "p")
        assert cache.get(key) is None
        cache.put(key, "result", ["a", "b"])
        assert cache.get(key) == "result"
        assert cache.hits == 1 and cache.misses == 1

    def test_invalidated_by_read_set_change(self, cache, tracker):
        key = ProgramCache.key("bfs", "a", "p")
        cache.put(key, "result", ["a", "b"])
        tracker.bump("b")
        assert cache.get(key) is None
        assert cache.invalidations == 1

    def test_unrelated_change_does_not_invalidate(self, cache, tracker):
        key = ProgramCache.key("bfs", "a", "p")
        cache.put(key, "result", ["a", "b"])
        tracker.bump("zzz")
        assert cache.get(key) == "result"

    def test_lru_eviction(self, cache):
        for i in range(5):
            cache.put(ProgramCache.key("p", f"v{i}", None), i, [f"v{i}"])
        assert len(cache) == 4
        assert cache.get(ProgramCache.key("p", "v0", None)) is None

    def test_get_refreshes_lru_position(self, cache):
        for i in range(4):
            cache.put(ProgramCache.key("p", f"v{i}", None), i, [f"v{i}"])
        cache.get(ProgramCache.key("p", "v0", None))  # refresh v0
        cache.put(ProgramCache.key("p", "v9", None), 9, ["v9"])
        assert cache.get(ProgramCache.key("p", "v0", None)) == 0
        assert cache.get(ProgramCache.key("p", "v1", None)) is None

    def test_hit_rate(self, cache):
        key = ProgramCache.key("p", "a", None)
        cache.put(key, 1, ["a"])
        cache.get(key)
        cache.get(ProgramCache.key("p", "zzz", None))
        assert cache.hit_rate == pytest.approx(0.5)

    def test_zero_capacity_rejected(self, tracker):
        with pytest.raises(ValueError):
            ProgramCache(tracker, capacity=0)

    def test_clear(self, cache):
        cache.put(ProgramCache.key("p", "a", None), 1, ["a"])
        cache.clear()
        assert len(cache) == 0


class TestEndToEndCaching:
    @pytest.fixture
    def cached_db(self):
        db = Weaver(
            WeaverConfig(
                num_gatekeepers=2, num_shards=2, enable_program_cache=True
            )
        )
        client = WeaverClient(db)
        with client.transaction() as tx:
            for v in ("a", "b", "c"):
                tx.create_vertex(v)
            tx.create_edge("a", "b", "ab")
            tx.create_edge("b", "c", "bc")
        return db, client

    def test_cached_traverse_skips_reads(self, cached_db):
        db, client = cached_db
        from repro.programs import Bfs, params

        first = db.run_program(Bfs(), "a", params(depth=0), use_cache=True,
                               cache_key="bfs-a")
        reads_after_first = sum(s.stats.vertices_read for s in db.shards)
        second = db.run_program(Bfs(), "a", params(depth=0), use_cache=True,
                                cache_key="bfs-a")
        reads_after_second = sum(s.stats.vertices_read for s in db.shards)
        assert second.results == first.results
        assert reads_after_second == reads_after_first
        assert db.program_cache.hits == 1

    def test_write_to_read_set_invalidates(self, cached_db):
        db, client = cached_db
        from repro.programs import Bfs, params

        db.run_program(Bfs(), "a", params(depth=0), use_cache=True,
                       cache_key="bfs-a")
        client.delete_edge("b", "bc")
        result = db.run_program(Bfs(), "a", params(depth=0), use_cache=True,
                                cache_key="bfs-a")
        assert result.results == ["a", "b"]
        assert db.program_cache.invalidations == 1

    def test_cache_disabled_by_default(self, db):
        assert db.program_cache is None
        # use_cache on a cache-less deployment is a silent no-op.
        with db.begin_transaction() as tx:
            tx.create_vertex("a")
        from repro.programs import GetNode

        result = db.run_program(GetNode(), "a", use_cache=True)
        assert result.value["handle"] == "a"
