"""Differential tests: batched scatter-gather vs the seed per-vertex path.

The round-based executor plus :class:`ShardSnapshotResolver` promises the
exact observable behavior of the seed sequential loop — same results,
same read set, same set of vertices visited — while resolving whole
rounds per shard against reused snapshots.  These tests run the library
programs both ways over seeded random multi-shard graphs at the same
checkpoint and compare.

What is deliberately NOT compared:

* ``vertices_visited``/``hops`` for programs declaring ``dedup_hops`` —
  same-round duplicate hops are dropped before resolution, so the raw
  visit count is lower by design (the distinct-visited set must match);
* per-shard ``vertices_read`` — the batched resolver serves cross-round
  revisits from its per-query vertex cache without a shard request, so
  the shard-side counter measures distinct resolutions, not visits.
"""

from __future__ import annotations

import pytest

from repro.bench.programs_bench import build_database
from repro.db import Weaver, WeaverConfig
from repro.programs.framework import ProgramExecutor
from repro.programs.library import (
    Bfs,
    ClusteringCoefficient,
    CollectReachable,
    GetNode,
    PathDiscovery,
    Reachability,
    ShortestPath,
    params,
)
from repro.programs.routing import ShardSnapshotResolver


def _seed_resolver(db, point):
    """The pre-optimization per-vertex closure: one fresh snapshot view
    (and cold comparison memo) per resolution."""

    def resolve(handle):
        shard_index = db._shard_of(handle)
        if shard_index is None:
            return None
        shard = db.shards[shard_index]
        shard.ensure_paged(handle)
        snapshot = shard.graph.at(point, memo_stats=shard.ordering.stats)
        if not snapshot.has_vertex(handle):
            return None
        return snapshot.vertex(handle)

    return resolve


def _run_both(db, make_program, start, point):
    """Execute the same program batched and sequentially at ``point``."""
    db._make_shards_ready(point)
    batched = ProgramExecutor().execute(
        make_program(),
        list(start),
        ShardSnapshotResolver(point, db._shard_of, db.shards, page_in=True),
        point,
    )
    sequential = ProgramExecutor().execute(
        make_program(), list(start), _seed_resolver(db, point), point
    )
    return batched, sequential


def _assert_equivalent(batched, sequential, exact=False):
    assert batched.results == sequential.results
    assert batched.read_set == sequential.read_set
    assert sorted(batched.states) == sorted(sequential.states)
    assert batched.halted == sequential.halted
    if exact:
        # Without dedup the two paths visit hop-for-hop identically.
        assert batched.vertices_visited == sequential.vertices_visited
        assert batched.hops == sequential.hops


class BfsNoDedup(Bfs):
    name = "bfs_no_dedup"
    dedup_hops = False


@pytest.fixture(scope="module", params=[3, 21, 99])
def graph(request):
    db, handles = build_database(
        num_vertices=120,
        avg_degree=5,
        num_shards=3,
        num_gatekeepers=2,
        seed=request.param,
    )
    return db, handles, db.checkpoint()


CASES = [
    ("bfs", Bfs, lambda h: [(h[0], params(depth=0))], False),
    (
        "bfs_depth_limited",
        Bfs,
        lambda h: [(h[0], params(depth=0, max_depth=3))],
        False,
    ),
    ("bfs_no_dedup", BfsNoDedup, lambda h: [(h[0], params(depth=0))], True),
    ("collect", CollectReachable, lambda h: [(h[0], params())], False),
    (
        "reachable_hit",
        Reachability,
        lambda h: [(h[0], params(target=h[-1]))],
        False,
    ),
    (
        "reachable_miss",
        Reachability,
        lambda h: [(h[0], params(target="no-such-vertex"))],
        False,
    ),
    (
        "shortest_path",
        ShortestPath,
        lambda h: [(h[0], params(target=h[len(h) // 2], dist=0))],
        False,
    ),
    (
        "path_discovery",
        PathDiscovery,
        lambda h: [(h[0], params(target=h[-1]))],
        False,
    ),
    ("clustering", ClusteringCoefficient, lambda h: [(h[0], params())], True),
    ("get_node", GetNode, lambda h: [(h[0], None)], True),
]


@pytest.mark.parametrize(
    "prog, make_start, exact",
    [case[1:] for case in CASES],
    ids=[case[0] for case in CASES],
)
def test_library_programs_match_seed(graph, prog, make_start, exact):
    db, handles, point = graph
    batched, sequential = _run_both(db, prog, make_start(handles), point)
    _assert_equivalent(batched, sequential, exact=exact)


def test_dedup_only_trims_duplicate_visits(graph):
    """Dedup changes the visit count, never the distinct-visited set."""
    db, handles, point = graph
    start = [(handles[0], params(depth=0))]
    deduped, _ = _run_both(db, Bfs, start, point)
    plain, _ = _run_both(db, BfsNoDedup, start, point)
    assert deduped.results == plain.results
    assert deduped.read_set == plain.read_set
    assert sorted(deduped.states) == sorted(plain.states)
    assert deduped.vertices_visited <= plain.vertices_visited


def _linked_db():
    """A small hand-built graph whose edge handles we control."""
    db = Weaver(
        WeaverConfig(num_shards=3, num_gatekeepers=2, partitioner="hash")
    )
    tx = db.begin_transaction()
    for h in "abcdefg":
        tx.create_vertex(h)
    edges = {}
    for src, dst in [
        ("a", "b"), ("a", "c"), ("b", "d"),
        ("c", "e"), ("d", "f"), ("e", "g"),
    ]:
        edges[(src, dst)] = tx.create_edge(src, dst)
    tx.commit()
    return db, edges


def test_historical_snapshots_match_seed():
    """Both paths agree at every snapshot, and the snapshots differ."""
    db, edges = _linked_db()
    point1 = db.checkpoint()

    tx = db.begin_transaction()
    tx.delete_edge("b", edges[("b", "d")])
    tx.create_vertex("h")
    tx.create_edge("a", "h")
    tx.commit()
    point2 = db.checkpoint()

    start = [("a", params(depth=0))]
    old_batched, old_sequential = _run_both(db, Bfs, start, point1)
    _assert_equivalent(old_batched, old_sequential)
    new_batched, new_sequential = _run_both(db, Bfs, start, point2)
    _assert_equivalent(new_batched, new_sequential)

    # The mutation really separated the two cuts of the graph.
    assert "d" in old_batched.results and "h" not in old_batched.results
    assert "h" in new_batched.results and "d" not in new_batched.results


def test_run_program_drives_the_batched_path():
    """The production entry point executes in rounds, not sequentially,
    and still matches the seed loop."""
    db, _ = _linked_db()
    point = db.checkpoint()
    result = db.run_program(Bfs(), "a", params(depth=0), at=point)
    assert db.executor.stats.batch_rounds > 0
    assert db.executor.stats.sequential_executions == 0
    assert result.rounds > 0

    _, sequential = _run_both(db, Bfs, [("a", params(depth=0))], point)
    assert result.results == sequential.results
    assert result.read_set == sequential.read_set


class TestProgramCacheWithHistory:
    """Program cache × ``at=``: snapshot identity is part of the key."""

    def _db(self):
        db = Weaver(
            WeaverConfig(
                num_shards=2,
                num_gatekeepers=2,
                partitioner="hash",
                enable_program_cache=True,
            )
        )
        tx = db.begin_transaction()
        for h in "abc":
            tx.create_vertex(h)
        tx.create_edge("a", "b")
        tx.create_edge("b", "c")
        tx.commit()
        point1 = db.checkpoint()
        tx = db.begin_transaction()
        tx.create_vertex("d")
        tx.create_edge("a", "d")
        tx.commit()
        return db, point1

    def test_cached_current_result_never_serves_historical(self):
        db, point1 = self._db()
        prm = params(depth=0)
        current = db.run_program(Bfs(), "a", prm, use_cache=True)
        assert "d" in current.results

        # Same program/start/params, earlier snapshot: must re-execute.
        historical = db.run_program(
            Bfs(), "a", prm, at=point1, use_cache=True
        )
        assert "d" not in historical.results
        assert set(historical.results) == {"a", "b", "c"}

        # Each snapshot now hits its own entry, and neither cross-serves.
        assert db.run_program(
            Bfs(), "a", prm, at=point1, use_cache=True
        ).results == historical.results
        assert db.run_program(
            Bfs(), "a", prm, use_cache=True
        ).results == current.results

    def test_cache_hit_counts_and_traces_as_a_run(self):
        db, _ = self._db()
        prm = params(depth=0)
        first = db.run_program(Bfs(), "a", prm, use_cache=True)
        runs_before = db.programs_run
        hit = db.run_program(Bfs(), "a", prm, use_cache=True)
        assert hit.results == first.results
        assert db.programs_run == runs_before + 1
        completes = db.tracer.spans(kind="program.complete")
        assert completes[-1].attr("cache_hit") is True
        # The original (miss) completion carried no cache_hit marker.
        assert completes[-2].attr("cache_hit") is None
