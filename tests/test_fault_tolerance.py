"""Failure handling: shard/gatekeeper recovery, epochs, the oracle chain
(section 4.3)."""

import pytest

from repro.cluster.manager import ClusterManager
from repro.core.vclock import Ordering
from repro.db import Weaver, WeaverClient, WeaverConfig
from repro.errors import ClusterError


def fresh(**kwargs):
    config = dict(num_gatekeepers=2, num_shards=2)
    config.update(kwargs)
    db = Weaver(WeaverConfig(**config))
    return db, WeaverClient(db)


def populate(client):
    with client.transaction() as tx:
        for v in ("a", "b", "c"):
            tx.create_vertex(v)
        tx.set_property("a", "color", "red")
        tx.create_edge("a", "b", "ab")
        tx.set_edge_property("a", "ab", "w", 2)
        tx.create_edge("b", "c", "bc")


class TestShardRecovery:
    def test_data_survives_shard_failure(self):
        db, client = fresh()
        populate(client)
        for index in range(len(db.shards)):
            db.fail_shard(index)
        assert client.get_node("a")["properties"] == {"color": "red"}
        edges = client.get_edges("a")
        assert edges[0]["properties"] == {"w": 2}
        assert client.reachable("a", "c")

    def test_epoch_advances_on_failover(self):
        db, client = fresh()
        populate(client)
        before = db.manager.epoch
        db.fail_shard(0)
        assert db.manager.epoch == before + 1

    def test_writes_work_after_recovery(self):
        db, client = fresh()
        populate(client)
        db.fail_shard(1)
        client.create_vertex("d")
        client.create_edge("c", "d")
        assert client.reachable("a", "d")

    def test_unapplied_commits_survive_via_store(self):
        # Commit without draining: the in-memory queues hold the only
        # in-flight copy; the replacement must reload it from the store.
        db, client = fresh()
        populate(client)
        client.set_property("c", "late", True)  # may still sit in queues
        db.fail_shard(db.mapping.lookup("c"))
        assert client.get_node("c")["properties"].get("late") is True

    def test_failovers_counted(self):
        db, client = fresh()
        populate(client)
        db.fail_shard(0)
        db.fail_gatekeeper(0)
        assert db.manager.failovers == 2


class TestGatekeeperRecovery:
    def test_clock_restarts_but_order_is_preserved(self):
        db, client = fresh()
        populate(client)
        with db.begin_transaction() as tx:
            tx.set_property("a", "pre", 1)
        old_ts = tx.timestamp
        db.fail_gatekeeper(0)
        with db.begin_transaction(gatekeeper=0) as tx2:
            tx2.set_property("a", "post", 2)
        new_ts = tx2.timestamp
        assert new_ts.epoch > old_ts.epoch
        assert old_ts.compare(new_ts) is Ordering.BEFORE

    def test_reads_after_gatekeeper_failover(self):
        db, client = fresh()
        populate(client)
        db.fail_gatekeeper(1)
        assert client.get_node("a")["properties"] == {"color": "red"}
        assert client.reachable("a", "c")

    def test_multiple_failovers(self):
        db, client = fresh()
        populate(client)
        db.fail_gatekeeper(0)
        db.fail_gatekeeper(1)
        db.fail_shard(0)
        client.set_property("b", "alive", True)
        assert client.get_node("b")["properties"]["alive"] is True


class TestClusterManager:
    def make_manager(self, db):
        return db.manager

    def test_heartbeat_tracking(self):
        db, client = fresh()
        manager = db.manager
        manager.heartbeat("gk0", now=10.0)
        manager.heartbeat("shard0", now=10.0)
        failed = manager.detect_failures(now=10.5)
        assert "gk1" in failed and "shard1" in failed
        assert "gk0" not in failed

    def test_unregistered_heartbeat_rejected(self):
        db, client = fresh()
        with pytest.raises(ClusterError):
            db.manager.heartbeat("ghost", now=0.0)

    def test_recover_unknown_indexes_rejected(self):
        db, client = fresh()
        with pytest.raises(ClusterError):
            db.manager.recover_shard(7)
        with pytest.raises(ClusterError):
            db.manager.recover_gatekeeper(7)

    def test_barrier_moves_all_servers_to_new_epoch(self):
        db, client = fresh()
        populate(client)
        db.fail_gatekeeper(0)
        epoch = db.manager.epoch
        for gk in db.gatekeepers:
            assert gk.clock.epoch == epoch
        for shard in db.shards:
            assert shard.epoch == epoch


class TestOracleChainFaultTolerance:
    def test_replicated_oracle_survives_failure_end_to_end(self):
        db, client = fresh(oracle_chain_length=3, announce_every=8)
        populate(client)
        # Force some reactive decisions so the chain holds state.
        for i in range(5):
            client.set_property("a", "k", i)
        db.oracle.fail_replica(0)
        # The system keeps answering queries and ordering transactions.
        client.set_property("a", "k", 99)
        assert client.get_node("a")["properties"]["k"] == 99
        assert client.reachable("a", "c")
