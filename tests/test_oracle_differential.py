"""Differential test: indexed reachability ≡ the seed's scan-all BFS.

The skyline-indexed ``EventDependencyGraph.reaches()`` must answer every
query exactly like :class:`ReferenceEventDependencyGraph` (the seed
implementation: full BFS over explicit ∪ implied edges), on randomized
event DAGs with hundreds of events, mixed epochs, and interleaved
``add_order`` / ``remove_event`` / ``collect_below`` — the operations
that exercise both the index maintenance and the positive-reachability
cache invalidation.
"""

import random

import pytest

from repro.core.oracle import TimelineOracle
from repro.core.oracle_reference import reference_oracle
from repro.core.ordering import Ordering
from repro.core.vclock import VectorClock


def _issue_stamps(rng, num_gatekeepers, num_events, max_epoch=2):
    """A causally-valid stamp stream: ticks, random observes, and
    cluster-wide (barriered) epoch bumps."""
    clocks = [VectorClock(num_gatekeepers, i) for i in range(num_gatekeepers)]
    epoch = 0
    stamps = []
    while len(stamps) < num_events:
        roll = rng.random()
        actor = rng.randrange(num_gatekeepers)
        if roll < 0.02 and epoch < max_epoch:
            epoch += 1
            for clock in clocks:
                clock.advance_epoch(epoch)
        elif roll < 0.35:
            peer = rng.randrange(num_gatekeepers)
            clocks[actor].observe(clocks[peer].announce())
        else:
            stamps.append(clocks[actor].tick())
    return stamps


def _cross_check_pairs(indexed, reference, stamps, rng, samples):
    """Both graphs answer identically on sampled (and flipped) pairs."""
    live = [ts for ts in stamps if ts in indexed.graph]
    if len(live) < 2:
        return
    for _ in range(samples):
        a, b = rng.sample(live, 2)
        assert indexed.graph.reaches(a, b) == reference.graph.reaches(a, b)
        assert indexed.graph.reaches(b, a) == reference.graph.reaches(b, a)
        # Repeat the first direction: the positive-reachability cache
        # must not change the answer.
        assert indexed.graph.reaches(a, b) == reference.graph.reaches(a, b)


@pytest.mark.parametrize("seed", [1, 7, 23, 91])
def test_indexed_reaches_matches_reference(seed):
    rng = random.Random(seed)
    stamps = _issue_stamps(rng, num_gatekeepers=3, num_events=240)
    indexed = TimelineOracle()
    reference = reference_oracle()

    for ts in stamps:
        indexed.create_event(ts)
        reference.create_event(ts)

    for step in range(420):
        roll = rng.random()
        if roll < 0.55:
            a, b = rng.sample(stamps, 2)
            prefer = Ordering.BEFORE if rng.random() < 0.5 else Ordering.AFTER
            decided_i = indexed.order(a, b, prefer)
            decided_r = reference.order(a, b, prefer)
            assert decided_i is decided_r, (a, b, prefer)
        elif roll < 0.72:
            a, b = rng.sample(stamps, 2)
            assert indexed.query_order(a, b) is reference.query_order(a, b)
        elif roll < 0.86:
            victim = rng.choice(stamps)
            indexed.graph.remove_event(victim)
            reference.graph.remove_event(victim)
            # Re-register: a collected event must come back with no
            # memory of its old edges in *both* implementations.
            if rng.random() < 0.5:
                indexed.create_event(victim)
                reference.create_event(victim)
        else:
            watermark = rng.choice(stamps)
            collected_i = indexed.collect_below(watermark)
            collected_r = reference.collect_below(watermark)
            assert collected_i == collected_r
        if step % 60 == 0:
            _cross_check_pairs(indexed, reference, stamps, rng, samples=40)

    _cross_check_pairs(indexed, reference, stamps, rng, samples=150)


def test_indexed_reaches_matches_reference_dense_single_epoch():
    """Dense concurrent workload: many crossed stamps, heavy ordering."""
    rng = random.Random(5)
    stamps = _issue_stamps(rng, num_gatekeepers=2, num_events=120, max_epoch=0)
    indexed = TimelineOracle()
    reference = reference_oracle()
    for ts in stamps:
        indexed.create_event(ts)
        reference.create_event(ts)
    for _ in range(500):
        a, b = rng.sample(stamps, 2)
        assert indexed.order(a, b) is reference.order(a, b)
    _cross_check_pairs(indexed, reference, stamps, rng, samples=250)


def test_fastpath_counters_move():
    """The new OracleStats counters actually count."""
    rng = random.Random(11)
    stamps = _issue_stamps(rng, num_gatekeepers=2, num_events=60, max_epoch=0)
    oracle = TimelineOracle()
    for ts in stamps:
        oracle.create_event(ts)
    pairs = [tuple(rng.sample(stamps, 2)) for _ in range(120)]
    for a, b in pairs:
        oracle.order(a, b)
    # Replaying the same pairs: concurrent ones now hit the
    # positive-reachability cache instead of re-running the BFS.
    for a, b in pairs:
        oracle.query_order(a, b)
    assert oracle.stats.bfs_expansions > 0
    assert oracle.stats.bfs_pruned > 0
    assert oracle.stats.reach_cache_hits > 0
