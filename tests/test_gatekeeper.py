"""Gatekeepers: stamping, announces, NOPs, and the commit path."""

import pytest

from repro.core.gatekeeper import Gatekeeper, sync_announce_all
from repro.core.vclock import Ordering
from repro.errors import TransactionAborted
from repro.store.kvstore import TransactionalStore


class TestStamping:
    def test_issue_increments_stats(self):
        gk = Gatekeeper(0, 2)
        gk.issue_timestamp()
        assert gk.stats.timestamps_issued == 1

    def test_stamps_strictly_increase(self):
        gk = Gatekeeper(0, 2)
        a, b = gk.issue_timestamp(), gk.issue_timestamp()
        assert a.compare(b) is Ordering.BEFORE

    def test_stamp_carries_issuer(self):
        gk = Gatekeeper(1, 3)
        assert gk.issue_timestamp().issuer == 1

    def test_watermark_not_counted_as_issue(self):
        gk = Gatekeeper(0, 2)
        gk.current_watermark()
        assert gk.stats.timestamps_issued == 0


class TestAnnounces:
    def test_sync_announce_orders_prior_stamps(self):
        gks = [Gatekeeper(i, 2) for i in range(2)]
        early = gks[0].issue_timestamp()
        sync_announce_all(gks)
        late = gks[1].issue_timestamp()
        assert early.compare(late) is Ordering.BEFORE

    def test_without_announce_cross_gk_stamps_concurrent(self):
        gks = [Gatekeeper(i, 2) for i in range(2)]
        a = gks[0].issue_timestamp()
        b = gks[1].issue_timestamp()
        assert a.compare(b) is Ordering.CONCURRENT

    def test_announce_counters(self):
        gks = [Gatekeeper(i, 3) for i in range(3)]
        sync_announce_all(gks)
        for gk in gks:
            assert gk.stats.announces_sent == 1
            assert gk.stats.announces_received == 2

    def test_nop_ticks_clock(self):
        gk = Gatekeeper(0, 1)
        nop = gk.make_nop()
        assert nop.local_clock == 1
        assert gk.stats.nops_sent == 1


class TestCommit:
    def make_gk(self):
        store = TransactionalStore()
        return Gatekeeper(0, 2, store), store

    def test_commit_writes_and_stamps(self):
        gk, store = self.make_gk()
        ts = gk.commit(
            lambda tx, t: tx.put("k", "v"), touched_vertices=["v1"]
        )
        assert store.get("k") == "v"
        assert store.get("__lastup__:v1") == ts
        assert gk.stats.commits == 1

    def test_commit_prepared_path(self):
        gk, store = self.make_gk()
        tx = store.begin()
        tx.put("k", 1)
        ts = gk.commit_prepared(tx, ["v1"])
        assert store.get("k") == 1
        assert store.get("__lastup__:v1") == ts

    def test_timestamp_inversion_aborts(self):
        # A dominating last-update stamp on the vertex forces an abort;
        # the client retries with a fresh, higher stamp (section 4.2).
        gk, store = self.make_gk()
        store.transact(lambda t: t.put("__lastup__:v1", _stamp([99, 99])))
        with pytest.raises(TransactionAborted):
            gk.commit(lambda tx, t: tx.put("k", 1), ["v1"])
        assert gk.stats.aborts == 1

    def test_concurrent_last_update_allowed(self):
        # Cross-gatekeeper concurrent stamps pass the check (the shards'
        # arrival order refines them, section 4.2).
        gk, store = self.make_gk()
        other = Gatekeeper(1, 2, store)
        other_ts = other.issue_timestamp()
        store.transact(lambda t: t.put("__lastup__:v1", other_ts))
        ts = gk.commit(lambda tx, t: tx.put("k", 1), ["v1"])
        assert ts.compare(other_ts) is Ordering.CONCURRENT

    def test_retry_after_abort_gets_higher_stamp(self):
        gk, store = self.make_gk()
        first = gk.issue_timestamp()
        second = gk.issue_timestamp()
        assert first.compare(second) is Ordering.BEFORE

    def test_commit_without_store_raises(self):
        gk = Gatekeeper(0, 1)
        with pytest.raises(RuntimeError):
            gk.commit(lambda tx, t: None, [])

    def test_generic_failure_counts_abort_and_releases_tx(self):
        # Any exception out of the commit path — not just an optimistic
        # abort — must count as an abort and close the store tx.
        gk, store = self.make_gk()

        def boom(tx, t):
            tx.put("k", 1)
            raise ValueError("mutation bug")

        with pytest.raises(ValueError):
            gk.commit(boom, ["v1"])
        assert gk.stats.aborts == 1
        assert store.get("k") is None
        # The store is fully released: a retry commits cleanly.
        gk.commit(lambda tx, t: tx.put("k", 2), ["v1"])
        assert store.get("k") == 2

    def test_commit_prepared_failure_releases_prepared_tx(self):
        gk, store = self.make_gk()
        store.transact(lambda t: t.put("__lastup__:v1", _stamp([99, 99])))
        tx = store.begin()
        tx.put("k", 1)
        with pytest.raises(TransactionAborted):
            gk.commit_prepared(tx, ["v1"])
        assert gk.stats.aborts == 1
        assert not tx.is_open
        assert store.get("k") is None


class TestEpochs:
    def test_advance_epoch_restarts_clock(self):
        gk = Gatekeeper(0, 2)
        old = gk.issue_timestamp()
        gk.advance_epoch(1)
        new = gk.issue_timestamp()
        assert old.compare(new) is Ordering.BEFORE
        assert new.epoch == 1


def _stamp(clocks):
    from repro.core.vclock import VectorTimestamp

    return VectorTimestamp(0, tuple(clocks), 0)
