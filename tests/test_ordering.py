"""The refinable-ordering façade and the shard-side decision cache."""

import pytest

from repro.core.oracle import TimelineOracle
from repro.core.ordering import (
    EarliestScheduler,
    OrderingCache,
    RefinableOrdering,
    make_oracle,
)
from repro.core.vclock import Ordering, VectorTimestamp


def ts(clocks, issuer=0, epoch=0):
    return VectorTimestamp(epoch, tuple(clocks), issuer)


A = ts([1, 0], issuer=0)
B = ts([0, 1], issuer=1)
C = ts([2, 0], issuer=0)


class TestOrderingCache:
    def test_miss_then_hit(self):
        cache = OrderingCache()
        assert cache.get(A, B) is None
        cache.put(A, B, Ordering.BEFORE)
        assert cache.get(A, B) is Ordering.BEFORE

    def test_reverse_direction_hits_flipped(self):
        cache = OrderingCache()
        cache.put(A, B, Ordering.BEFORE)
        assert cache.get(B, A) is Ordering.AFTER

    def test_hit_miss_counters(self):
        cache = OrderingCache()
        cache.get(A, B)
        cache.put(A, B, Ordering.BEFORE)
        cache.get(A, B)
        assert cache.hits == 1 and cache.misses == 1

    def test_len(self):
        cache = OrderingCache()
        cache.put(A, B, Ordering.BEFORE)
        cache.put(A, C, Ordering.BEFORE)
        assert len(cache) == 2

    def test_clear(self):
        cache = OrderingCache()
        cache.put(A, B, Ordering.BEFORE)
        cache.clear()
        assert cache.get(A, B) is None


class TestRefinableOrdering:
    def test_vclock_comparable_is_proactive(self):
        ordering = RefinableOrdering(TimelineOracle())
        assert ordering.compare(A, C) is Ordering.BEFORE
        assert ordering.stats.proactive == 1
        assert ordering.stats.reactive == 0

    def test_concurrent_goes_reactive(self):
        ordering = RefinableOrdering(TimelineOracle())
        assert ordering.compare(A, B) is Ordering.BEFORE
        assert ordering.stats.reactive == 1

    def test_repeat_concurrent_hits_cache(self):
        ordering = RefinableOrdering(TimelineOracle())
        ordering.compare(A, B)
        ordering.compare(A, B)
        assert ordering.stats.cached == 1
        assert ordering.stats.reactive == 1

    def test_cache_disabled_always_asks_oracle(self):
        oracle = TimelineOracle()
        ordering = RefinableOrdering(oracle, use_cache=False)
        ordering.compare(A, B)
        ordering.compare(A, B)
        assert ordering.stats.reactive == 2
        # One client request, one message: the first compare decides,
        # the second finds the order established (a query).
        assert oracle.stats.decisions == 1
        assert oracle.stats.queries == 1
        assert oracle.stats.messages == 2

    def test_prefer_after(self):
        ordering = RefinableOrdering(TimelineOracle())
        assert ordering.compare(A, B, prefer=Ordering.AFTER) is Ordering.AFTER

    def test_two_shards_share_oracle_decisions(self):
        oracle = TimelineOracle()
        shard1 = RefinableOrdering(oracle)
        shard2 = RefinableOrdering(oracle)
        first = shard1.compare(A, B)
        second = shard2.compare(A, B, prefer=Ordering.AFTER)
        assert first is second  # the oracle's commitment wins

    def test_reactive_fraction(self):
        ordering = RefinableOrdering(TimelineOracle())
        ordering.compare(A, C)
        ordering.compare(A, B)
        assert ordering.stats.reactive_fraction == pytest.approx(0.5)

    def test_stats_reset(self):
        ordering = RefinableOrdering(TimelineOracle())
        ordering.compare(A, B)
        ordering.stats.reset()
        assert ordering.stats.total == 0

    def test_earliest_single(self):
        ordering = RefinableOrdering(TimelineOracle())
        assert ordering.earliest([A]) is A

    def test_earliest_of_chain(self):
        ordering = RefinableOrdering(TimelineOracle())
        later = ts([3, 0])
        assert ordering.earliest([later, C, A]) is A

    def test_earliest_concurrent_decides_and_sticks(self):
        ordering = RefinableOrdering(TimelineOracle())
        first = ordering.earliest([A, B])
        again = ordering.earliest([A, B])
        assert first is again

    def test_earliest_empty_raises(self):
        ordering = RefinableOrdering(TimelineOracle())
        with pytest.raises(ValueError):
            ordering.earliest([])


class TestMakeOracle:
    def test_single(self):
        assert isinstance(make_oracle(1), TimelineOracle)

    def test_chain(self):
        oracle = make_oracle(3)
        assert oracle.chain_length == 3


class TestEvictBelow:
    def test_evicts_older_epoch_pairs(self):
        cache = OrderingCache()
        old_a = ts([1, 0], issuer=0, epoch=0)
        old_b = ts([0, 1], issuer=1, epoch=0)
        cache.put(old_a, old_b, Ordering.BEFORE)
        watermark = ts([0, 0], issuer=0, epoch=1)
        assert cache.evict_below(watermark) == 1
        assert len(cache) == 0

    def test_evicts_within_epoch_when_watermark_covers_both(self):
        # The seed compared epochs only, so same-epoch entries lived
        # forever; the per-issuer counter check reclaims them.
        cache = OrderingCache()
        cache.put(A, B, Ordering.BEFORE)  # ids (0,0,1) and (0,1,1)
        watermark = ts([5, 5], issuer=0, epoch=0)
        assert cache.evict_below(watermark) == 1
        assert len(cache) == 0

    def test_keeps_pairs_with_one_live_event(self):
        cache = OrderingCache()
        live = ts([9, 0], issuer=0)  # counter 9 > watermark's 5
        cache.put(A, B, Ordering.BEFORE)
        cache.put(live, B, Ordering.AFTER)
        watermark = ts([5, 5], issuer=1, epoch=0)
        assert cache.evict_below(watermark) == 1
        assert cache.get(live, B) is Ordering.AFTER

    def test_boundary_counter_is_evicted(self):
        # counter == watermark component counts as dominated (<=): the
        # watermark itself is the oldest in-flight stamp.
        cache = OrderingCache()
        cache.put(A, B, Ordering.BEFORE)
        watermark = ts([1, 1], issuer=0, epoch=0)
        assert cache.evict_below(watermark) == 1


class TestEarliestScheduler:
    def _make(self, num_queues=2):
        ordering = RefinableOrdering(TimelineOracle())
        return ordering, EarliestScheduler(ordering, num_queues)

    def test_single_queue(self):
        _, sched = self._make(1)
        assert sched.select([(A, 0)]) == 0
        assert sched.select([None]) is None

    def test_picks_vclock_earliest(self):
        _, sched = self._make(2)
        later = ts([3, 0])
        assert sched.select([(later, 0), (A, 1)]) == 1

    def test_all_empty_returns_none(self):
        _, sched = self._make(3)
        assert sched.select([None, None, None]) is None

    def test_empty_queue_loses_bracket(self):
        _, sched = self._make(3)
        assert sched.select([None, (A, 0), None]) == 1

    def test_concurrent_heads_follow_arrival_order(self):
        _, sched = self._make(2)
        assert sched.select([(A, 5), (B, 2)]) == 1

    def test_decision_sticks_across_calls(self):
        ordering, sched = self._make(2)
        first = sched.select([(A, 0), (B, 1)])
        again = sched.select([(A, 0), (B, 1)])
        assert first == again

    def test_matches_linear_earliest(self):
        # The tournament must agree with the seed's min() scan on a
        # shared oracle, whatever the mix of ordered/concurrent heads.
        oracle = TimelineOracle()
        ordering = RefinableOrdering(oracle)
        sched = EarliestScheduler(ordering, 3)
        heads = [(ts([2, 0, 0], issuer=0), 3),
                 (ts([0, 1, 0], issuer=1), 1),
                 (ts([0, 0, 1], issuer=2), 2)]
        picked = sched.select(heads)
        linear = ordering.earliest([h[0] for h in heads])
        assert heads[picked][0] is linear

    def test_unchanged_heads_save_compares(self):
        ordering, sched = self._make(4)
        entries = [(ts([1, 0, 0, 0], issuer=0), 0),
                   (ts([0, 1, 0, 0], issuer=1), 1),
                   (ts([0, 0, 1, 0], issuer=2), 2),
                   (ts([0, 0, 0, 1], issuer=3), 3)]
        sched.select(entries)
        saved_before = ordering.stats.heap_compares_saved
        sched.select(entries)  # nothing changed: zero compares needed
        assert ordering.stats.heap_compares_saved > saved_before

    def test_replacing_one_head_replays_one_path(self):
        ordering, sched = self._make(4)
        entries = [(ts([1, 0, 0, 0], issuer=0), 0),
                   (ts([0, 1, 0, 0], issuer=1), 1),
                   (ts([0, 0, 1, 0], issuer=2), 2),
                   (ts([0, 0, 0, 1], issuer=3), 3)]
        assert sched.select(entries) == 0
        entries[0] = (ts([9, 0, 0, 0], issuer=0), 9)
        picked = sched.select(entries)
        assert picked != 0  # the new head is no longer earliest

    def test_wrong_entry_count_raises(self):
        _, sched = self._make(2)
        with pytest.raises(ValueError):
            sched.select([(A, 0)])

    def test_zero_queues_rejected(self):
        ordering = RefinableOrdering(TimelineOracle())
        with pytest.raises(ValueError):
            EarliestScheduler(ordering, 0)


class TestFastpathCounters:
    def test_new_counters_start_zero_and_reset(self):
        ordering = RefinableOrdering(TimelineOracle())
        stats = ordering.stats
        assert stats.snapshot_memo_hits == 0
        assert stats.heap_compares_saved == 0
        stats.snapshot_memo_hits = 4
        stats.heap_compares_saved = 9
        stats.reset()
        assert stats.snapshot_memo_hits == 0
        assert stats.heap_compares_saved == 0

    def test_fastpath_counters_not_in_total(self):
        # total feeds reactive_fraction (Fig 9/14); avoided work must
        # not dilute it.
        ordering = RefinableOrdering(TimelineOracle())
        ordering.compare(A, C)
        ordering.stats.snapshot_memo_hits = 100
        ordering.stats.heap_compares_saved = 100
        assert ordering.stats.total == 1
