"""The refinable-ordering façade and the shard-side decision cache."""

import pytest

from repro.core.oracle import TimelineOracle
from repro.core.ordering import (
    OrderingCache,
    RefinableOrdering,
    make_oracle,
)
from repro.core.vclock import Ordering, VectorTimestamp


def ts(clocks, issuer=0, epoch=0):
    return VectorTimestamp(epoch, tuple(clocks), issuer)


A = ts([1, 0], issuer=0)
B = ts([0, 1], issuer=1)
C = ts([2, 0], issuer=0)


class TestOrderingCache:
    def test_miss_then_hit(self):
        cache = OrderingCache()
        assert cache.get(A, B) is None
        cache.put(A, B, Ordering.BEFORE)
        assert cache.get(A, B) is Ordering.BEFORE

    def test_reverse_direction_hits_flipped(self):
        cache = OrderingCache()
        cache.put(A, B, Ordering.BEFORE)
        assert cache.get(B, A) is Ordering.AFTER

    def test_hit_miss_counters(self):
        cache = OrderingCache()
        cache.get(A, B)
        cache.put(A, B, Ordering.BEFORE)
        cache.get(A, B)
        assert cache.hits == 1 and cache.misses == 1

    def test_len(self):
        cache = OrderingCache()
        cache.put(A, B, Ordering.BEFORE)
        cache.put(A, C, Ordering.BEFORE)
        assert len(cache) == 2

    def test_clear(self):
        cache = OrderingCache()
        cache.put(A, B, Ordering.BEFORE)
        cache.clear()
        assert cache.get(A, B) is None


class TestRefinableOrdering:
    def test_vclock_comparable_is_proactive(self):
        ordering = RefinableOrdering(TimelineOracle())
        assert ordering.compare(A, C) is Ordering.BEFORE
        assert ordering.stats.proactive == 1
        assert ordering.stats.reactive == 0

    def test_concurrent_goes_reactive(self):
        ordering = RefinableOrdering(TimelineOracle())
        assert ordering.compare(A, B) is Ordering.BEFORE
        assert ordering.stats.reactive == 1

    def test_repeat_concurrent_hits_cache(self):
        ordering = RefinableOrdering(TimelineOracle())
        ordering.compare(A, B)
        ordering.compare(A, B)
        assert ordering.stats.cached == 1
        assert ordering.stats.reactive == 1

    def test_cache_disabled_always_asks_oracle(self):
        oracle = TimelineOracle()
        ordering = RefinableOrdering(oracle, use_cache=False)
        ordering.compare(A, B)
        ordering.compare(A, B)
        assert ordering.stats.reactive == 2
        assert oracle.stats.queries == 2

    def test_prefer_after(self):
        ordering = RefinableOrdering(TimelineOracle())
        assert ordering.compare(A, B, prefer=Ordering.AFTER) is Ordering.AFTER

    def test_two_shards_share_oracle_decisions(self):
        oracle = TimelineOracle()
        shard1 = RefinableOrdering(oracle)
        shard2 = RefinableOrdering(oracle)
        first = shard1.compare(A, B)
        second = shard2.compare(A, B, prefer=Ordering.AFTER)
        assert first is second  # the oracle's commitment wins

    def test_reactive_fraction(self):
        ordering = RefinableOrdering(TimelineOracle())
        ordering.compare(A, C)
        ordering.compare(A, B)
        assert ordering.stats.reactive_fraction == pytest.approx(0.5)

    def test_stats_reset(self):
        ordering = RefinableOrdering(TimelineOracle())
        ordering.compare(A, B)
        ordering.stats.reset()
        assert ordering.stats.total == 0

    def test_earliest_single(self):
        ordering = RefinableOrdering(TimelineOracle())
        assert ordering.earliest([A]) is A

    def test_earliest_of_chain(self):
        ordering = RefinableOrdering(TimelineOracle())
        later = ts([3, 0])
        assert ordering.earliest([later, C, A]) is A

    def test_earliest_concurrent_decides_and_sticks(self):
        ordering = RefinableOrdering(TimelineOracle())
        first = ordering.earliest([A, B])
        again = ordering.earliest([A, B])
        assert first is again

    def test_earliest_empty_raises(self):
        ordering = RefinableOrdering(TimelineOracle())
        with pytest.raises(ValueError):
            ordering.earliest([])


class TestMakeOracle:
    def test_single(self):
        assert isinstance(make_oracle(1), TimelineOracle)

    def test_chain(self):
        oracle = make_oracle(3)
        assert oracle.chain_length == 3
