"""Differential tests: shard-resident execution vs the image-pull path.

The resident engine promises the exact observable behavior of the
batched client-side executor — same results, same read set, same halt
reason, hop-for-hop identical visit counts — while running every round
at the shards and forwarding frontiers peer-to-peer.  Both paths live
behind the same ``run_program`` entry point on one :class:`ProcessWeaver`
(``config.program_execution`` picks per call), so each comparison runs
against literally the same worker processes and the same snapshot.

Covered axes: library programs × seeded multi-shard graphs × historical
``at=`` reads × the shard-side program cache × a SIGKILL/recover epoch
boundary.  ``TestResidentSmoke`` doubles as the CI transport-smoke
entry (2 workers, BFS + cached re-run, trace-chain assertion).
"""

from __future__ import annotations

import random

import pytest

from repro.cluster.process import ProcessWeaver
from repro.db import WeaverConfig
from repro.programs.library import (
    Bfs,
    ClusteringCoefficient,
    CollectReachable,
    GetNode,
    PathDiscovery,
    Reachability,
    ShortestPath,
    params,
)


def build_graph(db, num_vertices, avg_degree, seed):
    """Seeded random graph, loaded through ordinary transactions."""
    rng = random.Random(seed)
    handles = [f"v{i}" for i in range(num_vertices)]
    tx = db.begin_transaction()
    for handle in handles:
        tx.create_vertex(handle)
    tx.commit()
    tx = db.begin_transaction()
    for src in handles:
        for _ in range(avg_degree):
            dst = handles[rng.randrange(num_vertices)]
            if dst != src:
                tx.create_edge(src, dst)
    tx.commit()
    db.drain()
    return handles


def _run_both(db, make_program, start, point, **kwargs):
    """Execute the same program resident and image-pull at ``point``."""
    db.config.program_execution = "resident"
    try:
        resident = db.run_program(
            make_program(), list(start), at=point, **kwargs
        )
        db.config.program_execution = "images"
        images = db.run_program(
            make_program(), list(start), at=point, **kwargs
        )
    finally:
        db.config.program_execution = "resident"
    return resident, images


def _assert_equivalent(resident, images):
    assert resident.results == images.results
    assert resident.read_set == images.read_set
    assert sorted(resident.states) == sorted(images.states)
    assert resident.halted == images.halted
    # Both paths apply the same same-round hop dedup, so the raw counts
    # match exactly, not just the distinct-visited sets.
    assert resident.vertices_visited == images.vertices_visited
    assert resident.hops == images.hops


@pytest.fixture(scope="module", params=[3, 21, 99])
def graph(request):
    config = WeaverConfig(
        num_shards=3,
        num_gatekeepers=2,
        partitioner="hash",
        enable_program_cache=True,
    )
    with ProcessWeaver(config) as db:
        handles = build_graph(db, 60, 4, seed=request.param)
        yield db, handles, db.checkpoint()


CASES = [
    ("bfs", Bfs, lambda h: [(h[0], params(depth=0))]),
    (
        "bfs_depth_limited",
        Bfs,
        lambda h: [(h[0], params(depth=0, max_depth=3))],
    ),
    ("collect", CollectReachable, lambda h: [(h[0], params())]),
    (
        "reachable_hit",
        Reachability,
        lambda h: [(h[0], params(target=h[-1]))],
    ),
    (
        "reachable_miss",
        Reachability,
        lambda h: [(h[0], params(target="no-such-vertex"))],
    ),
    (
        "shortest_path",
        ShortestPath,
        lambda h: [(h[0], params(target=h[len(h) // 2], dist=0))],
    ),
    (
        "path_discovery",
        PathDiscovery,
        lambda h: [(h[0], params(target=h[-1]))],
    ),
    ("clustering", ClusteringCoefficient, lambda h: [(h[0], params())]),
    ("get_node", GetNode, lambda h: [(h[0], None)]),
    (
        "multi_start",
        Bfs,
        lambda h: [(h[0], params(depth=0)), (h[-1], params(depth=0))],
    ),
]


@pytest.mark.parametrize(
    "prog, make_start",
    [case[1:] for case in CASES],
    ids=[case[0] for case in CASES],
)
def test_library_programs_match_image_pull(graph, prog, make_start):
    db, handles, point = graph
    resident, images = _run_both(db, prog, make_start(handles), point)
    _assert_equivalent(resident, images)


def test_resident_path_actually_ran_at_the_shards(graph):
    """The parity above is only meaningful if the resident runs really
    bypassed the client-side executor."""
    db, handles, point = graph
    before = db.executor.stats.batch_rounds
    db.config.program_execution = "resident"
    result = db.run_program(Bfs(), handles[0], params(depth=0), at=point)
    assert result.rounds > 0
    assert db.executor.stats.batch_rounds == before  # no client rounds
    snap = db.metrics.snapshot()
    assert snap["program.resident.programs_coordinated"] > 0
    assert snap["program.resident.rounds_executed"] > 0
    # Cross-shard traversal on a 3-shard hash partition must forward.
    assert snap["program.resident.forwards_sent"] > 0


class ConfiguredBfs(Bfs):
    """Not in the registry: resident shipping would lose instance state."""

    name = "configured_bfs"

    def __init__(self, flavor):
        self.flavor = flavor


def test_ineligible_program_falls_back_to_image_pull(graph):
    db, handles, point = graph
    db.config.program_execution = "resident"
    before = db.executor.stats.batch_rounds
    result = db.run_program(
        ConfiguredBfs("x"), handles[0], params(depth=0), at=point
    )
    # The client-side executor ran it (round counter moved) and the
    # answer matches the stock program's.
    assert db.executor.stats.batch_rounds > before
    stock = db.run_program(Bfs(), handles[0], params(depth=0), at=point)
    assert result.results == stock.results
    assert result.read_set == stock.read_set


class TestHistoricalReads:
    """Resident ≡ image-pull at every snapshot — and the snapshots are
    really distinct cuts of the graph."""

    def test_both_paths_agree_at_both_checkpoints(self):
        config = WeaverConfig(
            num_shards=3, num_gatekeepers=2, partitioner="hash"
        )
        with ProcessWeaver(config) as db:
            tx = db.begin_transaction()
            for h in "abcdefg":
                tx.create_vertex(h)
            edges = {}
            for src, dst in [
                ("a", "b"), ("a", "c"), ("b", "d"),
                ("c", "e"), ("d", "f"), ("e", "g"),
            ]:
                edges[(src, dst)] = tx.create_edge(src, dst)
            tx.commit()
            point1 = db.checkpoint()

            tx = db.begin_transaction()
            tx.delete_edge("b", edges[("b", "d")])
            tx.create_vertex("h")
            tx.create_edge("a", "h")
            tx.commit()
            point2 = db.checkpoint()

            start = [("a", params(depth=0))]
            old_resident, old_images = _run_both(db, Bfs, start, point1)
            _assert_equivalent(old_resident, old_images)
            new_resident, new_images = _run_both(db, Bfs, start, point2)
            _assert_equivalent(new_resident, new_images)

            # The mutation separated the two cuts for the resident path
            # just as it does for image pulls.
            assert "d" in old_resident.results
            assert "h" not in old_resident.results
            assert "h" in new_resident.results
            assert "d" not in new_resident.results


class TestResidentProgramCache:
    """Section 4.6 shard-side: memoized results revalidate against
    change counters on every fragment before being served."""

    def _db(self):
        config = WeaverConfig(
            num_shards=2,
            num_gatekeepers=2,
            partitioner="hash",
            enable_program_cache=True,
        )
        db = ProcessWeaver(config)
        tx = db.begin_transaction()
        for h in "abc":
            tx.create_vertex(h)
        tx.create_edge("a", "b")
        tx.create_edge("b", "c")
        tx.commit()
        db.drain()
        return db

    def test_cache_hit_matches_and_is_traced(self):
        with self._db() as db:
            prm = params(depth=0)
            first = db.run_program(Bfs(), "a", prm, use_cache=True)
            runs_before = db.programs_run
            hit = db.run_program(Bfs(), "a", prm, use_cache=True)
            assert hit.results == first.results
            assert hit.read_set == first.read_set
            assert db.programs_run == runs_before + 1
            completes = db.tracer.spans(kind="program.complete")
            assert completes[-1].attr("cache_hit") is True
            assert completes[-2].attr("cache_hit") is None
            snap = db.metrics.snapshot()
            assert snap["program.resident.cache_hits"] >= 1

    def test_write_to_read_set_invalidates(self):
        with self._db() as db:
            prm = params(depth=0)
            db.run_program(Bfs(), "a", prm, use_cache=True)
            # Mutate a vertex the program read: its shard's change
            # counter moves, so revalidation must refuse the entry.
            tx = db.begin_transaction()
            tx.create_vertex("d")
            tx.create_edge("b", "d")
            tx.commit()
            db.drain()
            fresh = db.run_program(Bfs(), "a", prm, use_cache=True)
            assert "d" in fresh.results
            completes = db.tracer.spans(kind="program.complete")
            assert completes[-1].attr("cache_hit") is None

    def test_historical_entries_keyed_by_snapshot(self):
        with self._db() as db:
            point1 = db.checkpoint()
            tx = db.begin_transaction()
            tx.create_vertex("d")
            tx.create_edge("a", "d")
            tx.commit()
            db.drain()
            prm = params(depth=0)
            current = db.run_program(Bfs(), "a", prm, use_cache=True)
            assert "d" in current.results
            historical = db.run_program(
                Bfs(), "a", prm, at=point1, use_cache=True
            )
            assert set(historical.results) == {"a", "b", "c"}
            # Each snapshot serves its own entry; neither cross-serves.
            assert db.run_program(
                Bfs(), "a", prm, at=point1, use_cache=True
            ).results == historical.results
            assert db.run_program(
                Bfs(), "a", prm, use_cache=True
            ).results == current.results


class TestKillRecoverParity:
    """The differential holds across a SIGKILL/recover epoch boundary:
    the replacement worker rejoins the peer mesh and the resident path
    still matches image pulls on the recovered partition."""

    def test_resident_matches_images_after_recovery(self):
        config = WeaverConfig(
            num_shards=3, num_gatekeepers=2, partitioner="hash"
        )
        with ProcessWeaver(config) as db:
            handles = build_graph(db, 30, 3, seed=7)
            point = db.checkpoint()
            start = [(handles[0], params(depth=0))]
            before_resident, before_images = _run_both(
                db, Bfs, start, point
            )
            _assert_equivalent(before_resident, before_images)

            db.kill_shard_worker(0)
            db.recover_shard(0)
            assert db.recoveries == 1

            after_point = db.checkpoint()
            after_resident, after_images = _run_both(
                db, Bfs, start, after_point
            )
            _assert_equivalent(after_resident, after_images)
            # The graph is static, so the recovered partition must
            # reproduce the pre-kill answer bit for bit.
            assert after_resident.results == before_resident.results
            assert after_resident.read_set == before_resident.read_set


class TestResidentSmoke:
    """CI transport-smoke entry: 2 workers, BFS + cached re-run, and
    the trace chain crosses the process boundary intact."""

    def test_bfs_cached_rerun_and_trace_chain(self):
        config = WeaverConfig(
            num_shards=2,
            num_gatekeepers=2,
            partitioner="hash",
            enable_program_cache=True,
        )
        with ProcessWeaver(config) as db:
            tx = db.begin_transaction()
            handles = [tx.create_vertex(f"s{i}") for i in range(12)]
            for i in range(1, 12):
                tx.create_edge(handles[(i - 1) // 2], handles[i])
            tx.commit()
            db.drain()

            prm = params(depth=0)
            result = db.run_program(Bfs(), "s0", prm, use_cache=True)
            assert sorted(result.results) == sorted(
                f"s{i}" for i in range(12)
            )

            # The whole pipeline rode one trace id: submit and stamp at
            # the client, rounds at the workers, completion back home.
            tid = db.tracer.spans(kind="program.submit")[-1].trace_id
            chain = db.tracer.spans(trace_id=tid)
            kinds = [span.kind for span in chain]
            assert kinds[0] == "program.submit"
            assert "program.stamp" in kinds
            assert kinds[-1] == "program.complete"
            rounds = [s for s in chain if s.kind == "program.round"]
            assert rounds, "no worker round spans crossed the wire"
            assert all(
                span.node in ("shard0", "shard1") for span in rounds
            )

            # Cached re-run: served from the shard-side cache.
            hit = db.run_program(Bfs(), "s0", prm, use_cache=True)
            assert hit.results == result.results
            last = db.tracer.spans(kind="program.complete")[-1]
            assert last.attr("cache_hit") is True
