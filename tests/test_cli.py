"""The command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "--figure", "fig99"])

    def test_tao_defaults(self):
        args = build_parser().parse_args(["tao"])
        assert args.ops == 500
        assert args.read_fraction == pytest.approx(0.998)


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "Weaver" in out and "gatekeepers" in out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "alice" in out
        assert "checkpoint" in out
        assert "failover" in out

    def test_tao_small(self, capsys):
        assert main(["tao", "--ops", "40", "--vertices", "60"]) == 0
        out = capsys.readouterr().out
        assert "failures" in out
        assert "| 0" in out  # zero failures

    def test_bench_fig7(self, capsys):
        assert main(["bench", "--figure", "fig7"]) == 0
        out = capsys.readouterr().out
        assert "350000" in out and "speedup" in out

    def test_bench_fig14(self, capsys):
        assert main(["bench", "--figure", "fig14"]) == 0
        out = capsys.readouterr().out
        assert "oracle/query" in out

    def test_chaos_defaults(self):
        args = build_parser().parse_args(["chaos"])
        assert args.seed == 1
        assert args.duration == 60
        assert args.vertices == 12

    def test_chaos_run(self, capsys):
        assert main(["chaos", "--seed", "2", "--duration", "25"]) == 0
        out = capsys.readouterr().out
        assert "recoveries" in out
        assert "history digest" in out
        assert "strict serializability: OK" in out

    def test_simulate(self, capsys):
        assert main(["simulate", "--writes", "10"]) == 0
        out = capsys.readouterr().out
        assert "crashed" in out and "recovered" in out
        assert "post-recovery read of v0: ok" in out

    def test_bench_fig10(self, capsys):
        assert main(["bench", "--figure", "fig10"]) == 0
        out = capsys.readouterr().out
        assert "p99" in out

    def test_module_entry_point(self):
        import subprocess
        import sys

        result = subprocess.run(
            [sys.executable, "-m", "repro", "info"],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0
        assert "Weaver" in result.stdout
