"""Live failure injection on the event-driven deployment (section 4.3).

Crashes are silent: the server's heartbeats stop, the cluster manager's
failure detector notices after the timeout, and recovery — epoch bump,
barrier, reload from the backing store — runs on simulated time.
"""

import pytest

from repro.db import operations as ops
from repro.db.config import WeaverConfig
from repro.programs import GetNode, Reachability, params
from repro.sim.clock import MSEC, USEC
from repro.sim.deployment import SimulatedWeaver


def make():
    return SimulatedWeaver(
        WeaverConfig(num_gatekeepers=2, num_shards=2),
        tau=200 * USEC,
        nop_period=100 * USEC,
        heartbeat_period=5 * MSEC,
    )


def commit(sw, operations, new_vertices=()):
    box = {}
    sw.submit_transaction(
        operations,
        callback=lambda ok, v: box.update(ok=ok, value=v),
        new_vertices=new_vertices,
    )
    sw.run(2 * MSEC)
    return box


def ask(sw, program, start, prog_params=None, wait=10 * MSEC):
    box = {}
    sw.submit_program(
        program, start, prog_params, callback=lambda r: box.update(r=r)
    )
    sw.run(wait)
    return box.get("r")


def populate(sw):
    commit(
        sw,
        [
            ops.CreateVertex("a"),
            ops.CreateVertex("b"),
            ops.CreateEdge("e", "a", "b"),
            ops.SetVertexProperty("a", "k", 1),
        ],
        ("a", "b"),
    )


class TestShardCrash:
    def test_detector_recovers_crashed_shard(self):
        sw = make()
        populate(sw)
        sw.crash_shard(0)
        # Long enough for heartbeats to lapse and the detector to act.
        sw.run(60 * MSEC)
        assert sw.recoveries == 1
        assert sw.manager.epoch >= 1

    def test_data_survives_shard_crash(self):
        sw = make()
        populate(sw)
        sw.crash_shard(sw.mapping.lookup("a"))
        sw.run(60 * MSEC)
        result = ask(sw, GetNode(), "a", wait=20 * MSEC)
        assert result is not None
        assert result.value["properties"] == {"k": 1}

    def test_traversal_after_crash(self):
        sw = make()
        populate(sw)
        sw.crash_shard(0)
        sw.run(60 * MSEC)
        result = ask(
            sw, Reachability(), "a", params(target="b"), wait=20 * MSEC
        )
        assert result is not None and result.results == [True]

    def test_program_waits_out_the_crash(self):
        """A program submitted while a shard is down completes after
        recovery rather than reading a partial world."""
        sw = make()
        populate(sw)
        sw.crash_shard(0)
        box = {}
        sw.submit_program(
            GetNode(), "a", None, callback=lambda r: box.update(r=r)
        )
        sw.run(10 * MSEC)      # shard still dead: no answer yet
        assert "r" not in box
        sw.run(80 * MSEC)      # detector fires, recovery runs
        assert "r" in box
        # The program was re-stamped post-recovery (section 4.3), so its
        # snapshot includes the reloaded state — not an empty world.
        assert box["r"].value["properties"] == {"k": 1}

    def test_writes_after_recovery_apply(self):
        sw = make()
        populate(sw)
        sw.crash_shard(0)
        sw.run(60 * MSEC)
        outcome = commit(sw, [ops.SetVertexProperty("a", "k", 2)])
        assert outcome["ok"]
        sw.run(5 * MSEC)
        result = ask(sw, GetNode(), "a", wait=20 * MSEC)
        assert result.value["properties"]["k"] == 2


class TestGatekeeperCrash:
    def test_detector_recovers_crashed_gatekeeper(self):
        sw = make()
        populate(sw)
        sw.crash_gatekeeper(1)
        sw.run(60 * MSEC)
        assert sw.recoveries == 1
        # The replacement's clock restarted in a higher epoch.
        assert sw.gatekeepers[1].clock.epoch >= 1

    def test_commits_continue_after_gatekeeper_recovery(self):
        sw = make()
        populate(sw)
        sw.crash_gatekeeper(0)
        sw.run(60 * MSEC)
        outcomes = [
            commit(sw, [ops.CreateVertex(f"post{i}")], (f"post{i}",))
            for i in range(4)
        ]
        # Requests routed to the dead server before recovery die; the
        # system as a whole keeps committing.
        assert any(o.get("ok") for o in outcomes)
        result = ask(sw, GetNode(), "post3", wait=20 * MSEC)
        if result is not None and result.results:
            assert result.value["handle"] == "post3"

    def test_epoch_ordering_spans_the_crash(self):
        sw = make()
        populate(sw)
        pre = commit(
            sw, [ops.SetVertexProperty("a", "k", 10)]
        )
        sw.crash_gatekeeper(0)
        sw.run(60 * MSEC)
        post = commit(sw, [ops.SetVertexProperty("a", "k", 20)])
        if post.get("ok"):
            from repro.core.vclock import Ordering

            assert pre["value"].compare(post["value"]) is Ordering.BEFORE
            result = ask(sw, GetNode(), "a", wait=20 * MSEC)
            assert result.value["properties"]["k"] == 20
