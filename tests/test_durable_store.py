"""The SQLite/WAL durable store: persistence, paging, crash survival.

Contract parity with the in-memory store is covered by the
backend-parametrized suite in ``test_store.py``; this file tests what
only the durable backend promises — state survives close/reopen and
``kill -9``, the page cache honors its byte budget, and compaction
reclaims rows in the database itself.
"""

import multiprocessing
import os
import time

import pytest

from repro.core.vclock import VectorTimestamp
from repro.errors import StoreError
from repro.store.durable import DurableStore


@pytest.fixture
def db_path(tmp_path):
    return str(tmp_path / "store.db")


class TestReopen:
    def test_values_and_deletes_survive_reopen(self, db_path):
        with DurableStore(db_path) as store:
            store.transact(lambda t: (t.put("a", 1), t.put("b", [2, 3])))
            store.transact(lambda t: t.delete("b"))
        with DurableStore(db_path) as store:
            assert store.get("a") == 1
            assert store.get("b") is None
            assert list(store.keys()) == ["a"]

    def test_commit_counter_survives_reopen(self, db_path):
        """Regression (the snapshot/restore counter bug, durably): a
        reopened store must not mint commit versions the pre-crash
        incarnation already used."""
        with DurableStore(db_path) as store:
            for i in range(5):
                store.transact(lambda t, i=i: t.put("k", i))
            pre = store.version
        with DurableStore(db_path) as store:
            assert store.version == pre
            store.transact(lambda t: t.put("k", 99))
            assert store.version == pre + 1

    def test_version_chains_survive_reopen(self, db_path):
        with DurableStore(db_path) as store:
            store.transact(lambda t: t.put("k", "old"))
            v = store.version
            store.transact(lambda t: t.put("k", "new"))
        with DurableStore(db_path) as store:
            assert store.read_at("k", v) == (True, "old")
            assert store.get("k") == "new"

    def test_complex_values_roundtrip(self, db_path):
        ts = VectorTimestamp(0, (3, 1), 0)
        with DurableStore(db_path) as store:
            store.transact(lambda t: t.put("ts", ts))
            store.transact(lambda t: t.put("nested", {"a": [1, (2, 3)]}))
        with DurableStore(db_path) as store:
            assert store.get("ts") == ts
            assert store.get("nested") == {"a": [1, (2, 3)]}

    def test_read_only_open(self, db_path):
        with DurableStore(db_path) as store:
            store.transact(lambda t: t.put("a", 1))
        with DurableStore(db_path, read_only=True) as ro:
            assert ro.get("a") == 1
            assert ro.version == 1
            with pytest.raises((StoreError, Exception)):
                ro.transact(lambda t: t.put("b", 2))


class TestPageCache:
    def test_budget_bounds_resident_bytes(self, db_path):
        budget = 4096
        with DurableStore(db_path, cache_bytes=budget) as store:
            for i in range(200):
                store.transact(lambda t, i=i: t.put(f"k{i}", "x" * 100))
            for i in range(200):
                assert store.get(f"k{i}") == "x" * 100
            assert store.stats.page_cache_evictions > 0
            assert store._cache_size <= budget or len(store._cache) == 1
            assert store.stats.page_cache_bytes == store._cache_size

    def test_hits_on_hot_keys(self, db_path):
        with DurableStore(db_path) as store:
            store.transact(lambda t: t.put("hot", 1))
            store.get("hot")  # miss: first load after the write
            before = store.stats.page_cache_hits
            for _ in range(5):
                store.get("hot")
            assert store.stats.page_cache_hits == before + 5

    def test_zero_budget_disables_caching(self, db_path):
        with DurableStore(db_path, cache_bytes=0) as store:
            store.transact(lambda t: t.put("k", 1))
            for _ in range(3):
                assert store.get("k") == 1
            assert store.stats.page_cache_hits == 0
            assert store.stats.page_cache_misses == 3
            assert store._cache_size == 0

    def test_dataset_larger_than_budget_reads_correctly(self, db_path):
        """The larger-than-RAM regime: every key still reads back right
        while the resident set stays bounded."""
        budget = 2048
        n = 300
        with DurableStore(db_path, cache_bytes=budget) as store:
            for i in range(n):
                store.transact(lambda t, i=i: t.put(f"k{i}", f"value-{i}"))
            total = store._conn.execute(
                "SELECT SUM(LENGTH(value)) FROM records"
            ).fetchone()[0]
            assert total > budget  # the premise: data exceeds the cache
            for i in range(n):
                assert store.get(f"k{i}") == f"value-{i}"


class TestCompaction:
    def test_superseded_rows_deleted(self, db_path):
        with DurableStore(db_path) as store:
            for i in range(10):
                store.transact(lambda t, i=i: t.put("k", i))
            reclaimed = store.collect_below(store.version)
            assert reclaimed == 9
            rows = store._conn.execute(
                "SELECT COUNT(*) FROM records WHERE key = 'k'"
            ).fetchone()[0]
            assert rows == 1
            assert store.get("k") == 9

    def test_lone_tombstones_purged(self, db_path):
        with DurableStore(db_path) as store:
            store.transact(lambda t: t.put("gone", 1))
            store.transact(lambda t: t.delete("gone"))
            store.transact(lambda t: t.put("keep", 2))
            store.collect_below(store.version)
            rows = store._conn.execute(
                "SELECT key FROM records"
            ).fetchall()
            assert rows == [("keep",)]
            assert store.stats.tombstones_purged == 1

    def test_cache_coherent_after_compaction(self, db_path):
        with DurableStore(db_path) as store:
            for i in range(5):
                store.transact(lambda t, i=i: t.put("k", i))
            store.get("k")  # chain now cached, 5 records long
            store.collect_below(store.version)
            assert store.get("k") == 4  # served from the trimmed cache
            chain = store._cache.get("k")
            assert chain is not None and len(chain) == 1

    def test_compaction_respects_watermark(self, db_path):
        with DurableStore(db_path) as store:
            store.transact(lambda t: t.put("k", "a"))
            v1 = store.version
            store.transact(lambda t: t.put("k", "b"))
            store.transact(lambda t: t.put("k", "c"))
            store.collect_below(v1)
            # Nothing below v1 is superseded-by-v1, so reads at v1 and
            # above are all intact.
            assert store.read_at("k", v1) == (True, "a")
            assert store.get("k") == "c"


def _hammer(path: str) -> None:
    """Child process: commit pairs forever until killed.

    Each transaction writes the same value to both keys, so atomicity
    is observable after the kill: a torn commit would leave x != y.
    """
    store = DurableStore(path)
    i = 0
    while True:
        i += 1
        store.transact(lambda t, i=i: (t.put("x", i), t.put("y", i)))


class TestKillNine:
    def test_state_survives_sigkill_of_writer(self, db_path):
        ctx = multiprocessing.get_context("fork")
        proc = ctx.Process(target=_hammer, args=(db_path,), daemon=True)
        proc.start()
        deadline = time.monotonic() + 10.0
        # Let the child commit for a while (but demand progress first so
        # the post-mortem assertions are non-vacuous).
        while time.monotonic() < deadline:
            if os.path.exists(db_path):
                try:
                    with DurableStore(db_path, read_only=True) as peek:
                        if (peek.get("x") or 0) >= 20:
                            break
                except Exception:
                    pass
            time.sleep(0.01)
        proc.kill()
        proc.join(timeout=10)

        with DurableStore(db_path) as store:
            x, y = store.get("x"), store.get("y")
            # Atomicity across the kill: both keys carry the same
            # transaction's value, never a torn pair.
            assert x == y
            assert x >= 20
            # The persisted counter equals the newest committed version.
            head = store._conn.execute(
                "SELECT MAX(version) FROM records"
            ).fetchone()[0]
            assert store.version == head
            # And the store resumes: new commits use fresh versions.
            store.transact(lambda t: t.put("x", -1))
            assert store.version == head + 1
