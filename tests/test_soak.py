"""A deterministic soak test: every feature, one long mixed run.

One database lives through thousands of mixed operations — transactions
with retries, traversals, historical reads, GC sweeps, failovers,
evictions, cache hits — while an independent model of the graph checks
every read.  This is the closest thing to a day in production the test
suite has.
"""

import random

import pytest

from repro.db import Weaver, WeaverClient, WeaverConfig
from repro.errors import TransactionAborted, WeaverError


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_soak_everything(seed):
    rng = random.Random(seed)
    db = Weaver(
        WeaverConfig(
            num_gatekeepers=3,
            num_shards=3,
            announce_every=3,
            enable_program_cache=True,
            store_nodes=4,
            store_replication=2,
        )
    )
    db.enable_demand_paging()
    client = WeaverClient(db)

    # The model: vertex -> {"props": {...}, "edges": {handle: dst}}.
    model = {}
    checkpoints = []  # (ts, frozen deep copy of the model)

    def snapshot_model():
        return {
            v: {
                "props": dict(rec["props"]),
                "edges": dict(rec["edges"]),
            }
            for v, rec in model.items()
        }

    def check_vertex(name):
        node = client.get_node(name)
        assert node["properties"] == model[name]["props"], name
        assert node["out_degree"] == len(model[name]["edges"]), name

    # Seed population.
    with client.transaction() as tx:
        for i in range(12):
            name = f"v{i}"
            tx.create_vertex(name)
            model[name] = {"props": {}, "edges": {}}

    # Vertices whose version history was sacrificed to demand paging:
    # a page-in restores only the *latest* committed state, so reads at
    # older checkpoints are undefined for them from the eviction on.
    history_lost = set()

    edge_counter = 0
    for step in range(1500):
        roll = rng.random()
        names = sorted(model)
        pick = lambda: names[rng.randrange(len(names))]
        try:
            if roll < 0.25:  # property write
                v = pick()
                client.set_property(v, "n", step)
                model[v]["props"]["n"] = step
            elif roll < 0.45:  # edge create
                src, dst = pick(), pick()
                handle = f"soak{edge_counter}"
                edge_counter += 1
                client.transact(
                    lambda tx: tx.create_edge(src, dst, handle)
                )
                model[src]["edges"][handle] = dst
            elif roll < 0.55:  # edge delete
                candidates = [
                    (v, h) for v in names for h in model[v]["edges"]
                ]
                if candidates:
                    v, h = candidates[rng.randrange(len(candidates))]
                    client.transact(lambda tx: tx.delete_edge(v, h))
                    del model[v]["edges"][h]
            elif roll < 0.75:  # read + verify
                check_vertex(pick())
            elif roll < 0.83:  # traversal + verify against the model
                start = pick()
                seen = {start}
                frontier = [start]
                while frontier:
                    nxt = []
                    for v in frontier:
                        for dst in model[v]["edges"].values():
                            if dst not in seen:
                                seen.add(dst)
                                nxt.append(dst)
                    frontier = nxt
                assert set(client.traverse(start)) == seen
            elif roll < 0.88:  # checkpoint for later historical reads
                checkpoints.append((db.checkpoint(), snapshot_model()))
            elif roll < 0.93 and checkpoints:  # historical verify
                ts, frozen = checkpoints[rng.randrange(len(checkpoints))]
                v = sorted(frozen)[rng.randrange(len(frozen))]
                if v not in history_lost:
                    node = client.get_node(v, at=ts)
                    assert node["properties"] == frozen[v]["props"]
                    assert node["out_degree"] == len(frozen[v]["edges"])
            elif roll < 0.96:  # infrastructure churn
                event = rng.randrange(3)
                if event == 0:
                    db.fail_shard(rng.randrange(len(db.shards)))
                elif event == 1:
                    db.fail_gatekeeper(
                        rng.randrange(len(db.gatekeepers))
                    )
                else:
                    victim = pick()
                    db.evict_vertex(victim)
                    history_lost.add(victim)
                if event in (0, 1):
                    # Failover trades per-version history for recovery
                    # across the whole cluster: old checkpoints stop
                    # being answerable entirely.
                    checkpoints.clear()
            else:  # GC sweep
                db.collect_garbage()
                checkpoints.clear()  # collected below the idle watermark
        except (TransactionAborted, WeaverError):
            # Conflicts and races are expected under churn; the model is
            # only updated on success, so consistency checks stand.
            pass

    # Final full verification.
    for name in sorted(model):
        check_vertex(name)
