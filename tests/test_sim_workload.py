"""Closed-loop clients on the event-driven deployment, with service
costs: protocol-level performance."""

import pytest

from repro.bench.costmodel import CostParams
from repro.db import operations as ops
from repro.db.config import WeaverConfig
from repro.programs import GetNode
from repro.sim.clock import MSEC, USEC
from repro.sim.deployment import SimulatedWeaver
from repro.sim.workload import SimClients, finite_stream


def make(gks=2, shards=2, with_costs=True):
    return SimulatedWeaver(
        WeaverConfig(num_gatekeepers=gks, num_shards=shards),
        tau=200 * USEC,
        nop_period=200 * USEC,
        costs=CostParams() if with_costs else None,
    )


def preload(sw, names):
    done = []
    for name in names:
        sw.submit_transaction(
            [ops.CreateVertex(name)],
            callback=lambda ok, v: done.append(ok),
            new_vertices=(name,),
        )
    sw.run(50 * MSEC)
    assert all(done)


class TestSimClients:
    def test_finite_stream_completes_all_ops(self):
        sw = make()
        preload(sw, ["a"])
        stream = finite_stream(
            [("prog", GetNode(), "a", None)] * 12
        )
        clients = SimClients(sw, 3, stream)
        clients.start()
        clients.run_to_completion()
        assert clients.completed == 12
        assert len(clients.latencies) == 12

    def test_mixed_ops(self):
        sw = make()
        preload(sw, ["a"])
        specs = []
        for i in range(6):
            specs.append(("tx", [ops.CreateVertex(f"w{i}")], (f"w{i}",)))
            specs.append(("prog", GetNode(), "a", None))
        clients = SimClients(sw, 2, finite_stream(specs))
        clients.start()
        clients.run_to_completion()
        assert clients.completed == 12
        assert clients.failed == 0

    def test_throughput_positive_and_latency_sensible(self):
        sw = make()
        preload(sw, ["a"])
        clients = SimClients(
            sw, 4, finite_stream([("prog", GetNode(), "a", None)] * 20)
        )
        clients.start()
        clients.run_to_completion()
        assert clients.throughput > 0
        # Program latency >= one NOP wait; well under a second.
        assert 0 < clients.latencies.mean < 0.1

    def test_zero_clients_rejected(self):
        sw = make()
        with pytest.raises(ValueError):
            SimClients(sw, 0, finite_stream([]))

    def test_unknown_spec_rejected(self):
        sw = make()
        clients = SimClients(sw, 1, finite_stream([("warp",)]))
        with pytest.raises(ValueError):
            clients.start()


class TestServiceCosts:
    def test_gatekeeper_service_time_delays_commits(self):
        fast = make(with_costs=False)
        preload_start = fast.simulator.now
        slow = make(with_costs=True)
        box_fast, box_slow = [], []
        fast.submit_transaction(
            [ops.CreateVertex("a")],
            callback=lambda ok, v: box_fast.append(fast.simulator.now),
            new_vertices=("a",),
        )
        slow.submit_transaction(
            [ops.CreateVertex("a")],
            callback=lambda ok, v: box_slow.append(slow.simulator.now),
            new_vertices=("a",),
        )
        fast.run(100 * MSEC)
        slow.run(100 * MSEC)
        assert box_slow[0] > box_fast[0]

    def test_more_gatekeepers_more_write_throughput(self):
        """Protocol-level scaling: the gatekeeper bank is the write
        bottleneck once service time is charged (the Fig 12 mechanism,
        straight from the protocol)."""

        def measure(gks):
            sw = make(gks=gks, shards=2)
            specs = [
                ("tx", [ops.CreateVertex(f"v{i}")], (f"v{i}",))
                for i in range(120)
            ]
            clients = SimClients(sw, 16, finite_stream(specs))
            clients.start()
            clients.run_to_completion(max_sim_seconds=60)
            return clients.throughput

        one = measure(1)
        four = measure(4)
        assert four > 2 * one

    def test_program_reads_occupy_shards(self):
        sw = make()
        preload(sw, ["a"])
        clients = SimClients(
            sw, 2, finite_stream([("prog", GetNode(), "a", None)] * 6)
        )
        clients.start()
        clients.run_to_completion()
        shard = sw.mapping.lookup("a")
        assert sw._shard_servers[shard].jobs >= 6
