"""The discrete-event simulation substrate."""

import pytest

from repro.sim.clock import MSEC, SEC, USEC, SimClock
from repro.sim.network import Network
from repro.sim.simulator import Server, Simulator


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_advance_to(self):
        clock = SimClock()
        clock.advance_to(1.5)
        assert clock.now == 1.5

    def test_no_backwards_travel(self):
        clock = SimClock(1.0)
        with pytest.raises(ValueError):
            clock.advance_to(0.5)

    def test_advance_by(self):
        clock = SimClock()
        clock.advance_by(2.0)
        assert clock.now == 2.0

    def test_negative_delta_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance_by(-1)

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimClock(-1)

    def test_units(self):
        assert USEC == pytest.approx(1e-6)
        assert MSEC == pytest.approx(1e-3)
        assert SEC == 1.0


class TestSimulator:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, order.append, "b")
        sim.schedule(1.0, order.append, "a")
        sim.run()
        assert order == ["a", "b"]

    def test_ties_run_fifo(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, order.append, "first")
        sim.schedule(1.0, order.append, "second")
        sim.run()
        assert order == ["first", "second"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        sim.schedule(3.0, lambda: None)
        sim.run()
        assert sim.now == 3.0

    def test_run_until_stops_early(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(5.0, fired.append, 5)
        sim.run(until=2.0)
        assert fired == [1]
        assert sim.now == 2.0
        assert sim.pending() == 1

    def test_cancelled_event_skipped(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, fired.append, 1)
        event.cancel()
        sim.run()
        assert fired == []

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(0.5, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-1, lambda: None)

    def test_events_can_schedule_events(self):
        sim = Simulator()
        seen = []

        def chain(n):
            seen.append(n)
            if n < 3:
                sim.schedule(1.0, chain, n + 1)

        sim.schedule(0.0, chain, 0)
        sim.run()
        assert seen == [0, 1, 2, 3]

    def test_step_returns_false_when_empty(self):
        assert not Simulator().step()

    def test_events_run_counter(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_run == 1


class TestServer:
    def test_idle_server_serves_immediately(self):
        sim = Simulator()
        server = Server(sim)
        assert server.occupy(2.0) == 2.0

    def test_busy_server_queues(self):
        sim = Simulator()
        server = Server(sim)
        server.occupy(2.0)
        assert server.occupy(1.0) == 3.0

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            Server(Simulator()).occupy(-1)

    def test_utilization(self):
        sim = Simulator()
        server = Server(sim)
        server.occupy(1.0)
        sim.schedule(4.0, lambda: None)
        sim.run()
        assert server.utilization() == pytest.approx(0.25)


class TestNetwork:
    def test_delivery_after_latency(self):
        sim = Simulator()
        net = Network(sim, latency=1 * MSEC)
        arrivals = []
        net.send("a", "b", lambda: arrivals.append(sim.now))
        sim.run()
        assert arrivals == [pytest.approx(1 * MSEC)]

    def test_fifo_per_channel_despite_latency_override(self):
        sim = Simulator()
        net = Network(sim, latency=1 * MSEC)
        arrivals = []
        net.send("a", "b", lambda: arrivals.append("slow"), latency=5 * MSEC)
        net.send("a", "b", lambda: arrivals.append("fast"), latency=1 * MSEC)
        sim.run()
        assert arrivals == ["slow", "fast"]

    def test_channels_are_independent(self):
        sim = Simulator()
        net = Network(sim, latency=1 * MSEC)
        arrivals = []
        net.send("a", "b", lambda: arrivals.append("ab"), latency=5 * MSEC)
        net.send("c", "b", lambda: arrivals.append("cb"), latency=1 * MSEC)
        sim.run()
        assert arrivals == ["cb", "ab"]

    def test_seqnos_increment_per_channel(self):
        sim = Simulator()
        net = Network(sim)
        assert net.send("a", "b", lambda: None) == 0
        assert net.send("a", "b", lambda: None) == 1
        assert net.send("a", "c", lambda: None) == 0

    def test_message_kinds_counted(self):
        sim = Simulator()
        net = Network(sim)
        net.send("a", "b", lambda: None, kind="announce")
        net.send("a", "b", lambda: None, kind="announce")
        net.send("a", "b", lambda: None, kind="tx")
        assert net.stats.count("announce") == 2
        assert net.stats.total == 3

    def test_broadcast(self):
        sim = Simulator()
        net = Network(sim)
        got = []
        net.broadcast(
            "src",
            ["d1", "d2"],
            lambda dst: (lambda: got.append(dst)),
        )
        sim.run()
        assert sorted(got) == ["d1", "d2"]

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            Network(Simulator(), latency=-1)
