"""The observability layer: metrics registry, tracer, collectors."""

import pytest

from repro.obs import (
    Counter,
    Histogram,
    MetricsRegistry,
    Tracer,
    assemble_chain,
    scalar_fields,
)
from repro.core.vclock import VectorTimestamp


def ts(clocks, issuer=0, epoch=0):
    return VectorTimestamp(epoch, tuple(clocks), issuer)


class TestCounterGauge:
    def test_counter_increments(self):
        c = Counter("x")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)

    def test_gauge_sets(self):
        registry = MetricsRegistry()
        g = registry.gauge("depth")
        g.set(7)
        assert registry.snapshot()["depth"] == 7


class TestHistogram:
    def test_count_sum_mean(self):
        h = Histogram("lat")
        for v in (0.001, 0.002, 0.003):
            h.observe(v)
        assert h.count == 3
        assert h.mean == pytest.approx(0.002)

    def test_quantiles_ordered(self):
        h = Histogram("lat")
        for i in range(1, 101):
            h.observe(i * 1e-4)
        assert h.quantile(0.50) <= h.quantile(0.95) <= h.quantile(0.99)
        assert h.quantile(1.0) == pytest.approx(h.max)

    def test_overflow_bucket(self):
        h = Histogram("lat", buckets=[1.0, 2.0])
        h.observe(100.0)  # past the last bound
        assert h.count == 1
        assert h.quantile(0.99) == pytest.approx(100.0)

    def test_empty_summary(self):
        s = Histogram("lat").summary()
        assert s["count"] == 0 and s["p99"] == 0.0 and s["max"] == 0.0

    def test_cdf_monotone(self):
        h = Histogram("lat")
        for i in range(50):
            h.observe((i + 1) * 1e-5)
        curve = h.cdf()
        fractions = [f for _, f in curve]
        assert fractions == sorted(fractions)
        assert fractions[-1] == pytest.approx(1.0)

    def test_buckets_must_increase(self):
        with pytest.raises(ValueError):
            Histogram("lat", buckets=[2.0, 1.0])

    def test_reset(self):
        h = Histogram("lat")
        h.observe(1.0)
        h.reset()
        assert h.count == 0 and h.summary()["max"] == 0.0


class TestRegistry:
    def test_get_or_create(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")

    def test_type_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(ValueError):
            registry.gauge("a")

    def test_snapshot_sorted_and_flat(self):
        registry = MetricsRegistry()
        registry.counter("z.last").inc()
        registry.counter("a.first").inc(2)
        registry.histogram("m.lat").observe(0.5)
        snap = registry.snapshot()
        assert list(snap) == sorted(snap)
        assert snap["a.first"] == 2
        assert snap["m.lat.count"] == 1

    def test_collector_merged(self):
        registry = MetricsRegistry()
        registry.register_collector(lambda: {"ext.value": 9})
        assert registry.snapshot()["ext.value"] == 9

    def test_reset_owned_instruments(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(5)
        registry.reset()
        assert registry.snapshot()["a"] == 0


class TestScalarFields:
    def test_reads_numeric_public_attrs(self):
        class Stats:
            def __init__(self):
                self.b = 2
                self.a = 1
                self._hidden = 9
                self.name = "x"

        assert scalar_fields(Stats()) == {"a": 1, "b": 2}


class TestTracer:
    def test_emit_and_filter(self):
        tracer = Tracer()
        tid = tracer.next_trace_id()
        tracer.emit(tid, "client.submit", node="client")
        tracer.emit(tid, "store.commit", node="gk0")
        tracer.emit(None, "oracle.decide", node="oracle")
        assert [s.kind for s in tracer.spans(trace_id=tid)] == [
            "client.submit", "store.commit",
        ]
        assert len(tracer.spans(kind="oracle.decide")) == 1

    def test_attrs_sorted_and_accessible(self):
        tracer = Tracer()
        span = tracer.emit(1, "k", b=2, a=1)
        assert span.attrs == (("a", 1), ("b", 2))
        assert span.attr("b") == 2
        assert span.attr("missing", "d") == "d"

    def test_ring_evicts_but_sinks_see_all(self):
        tracer = Tracer(capacity=4)
        seen = []
        tracer.add_sink(lambda s: seen.append(s.kind))
        for i in range(10):
            tracer.emit(1, f"k{i}")
        assert len(tracer) == 4
        assert len(seen) == 10

    def test_clock_supplies_timestamps(self):
        now = [0.5]
        tracer = Tracer(clock=lambda: now[0])
        assert tracer.emit(1, "k").at == 0.5

    def test_without_clock_seq_is_time(self):
        tracer = Tracer()
        first = tracer.emit(1, "k")
        second = tracer.emit(1, "k")
        assert second.at > first.at

    def test_registry_counters(self):
        registry = MetricsRegistry()
        tracer = Tracer(registry=registry)
        tracer.next_trace_id()
        tracer.emit(1, "k")
        snap = registry.snapshot()
        assert snap["trace.traces"] == 1 and snap["trace.spans"] == 1

    def test_trace_ids_sorted_distinct(self):
        tracer = Tracer()
        tracer.emit(3, "k")
        tracer.emit(1, "k")
        tracer.emit(3, "k")
        assert tracer.trace_ids() == [1, 3]


class TestAssembleChain:
    def test_decisions_joined_by_event_id(self):
        tracer = Tracer()
        a, b = ts([1, 0], issuer=0), ts([0, 1], issuer=1)
        tracer.emit(7, "gatekeeper.stamp", node="gk0", ts=a)
        tracer.emit(None, "oracle.decide", node="oracle", a=a.id, b=b.id)
        tracer.emit(None, "oracle.decide", node="oracle",
                    a=(9, 9, 9), b=(9, 9, 8))  # unrelated decision
        chain = assemble_chain(tracer, 7)
        assert [s.kind for s in chain] == [
            "gatekeeper.stamp", "oracle.decide",
        ]

    def test_sorted_by_time_then_seq(self):
        tracer = Tracer(clock=lambda: 1.0)
        first = tracer.emit(5, "a")
        second = tracer.emit(5, "b")
        chain = assemble_chain(tracer, 5)
        assert chain == [first, second]
