"""The fault-injection layer: plans, fates, and network integration."""

import pytest

from repro.cluster.messages import QueuedTransaction
from repro.cluster.shard import ShardServer
from repro.core.gatekeeper import Gatekeeper
from repro.core.oracle import TimelineOracle
from repro.sim.clock import MSEC, USEC
from repro.sim.faults import (
    DEFAULT_RETRANSMIT_DELAY,
    CrashSpec,
    FaultInjector,
    FaultPlan,
    MessageFault,
    Partition,
)
from repro.sim.network import Network
from repro.sim.simulator import Simulator


class TestValidation:
    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError):
            MessageFault("explode")

    @pytest.mark.parametrize("rate", [0.0, -0.1, 1.5])
    def test_bad_rate_rejected(self, rate):
        with pytest.raises(ValueError):
            MessageFault("drop", rate=rate)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            MessageFault("delay", extra_delay=-1.0)

    def test_partition_must_end_after_start(self):
        with pytest.raises(ValueError):
            Partition("a", "b", start=2.0, end=1.0)

    def test_crash_spec_kind_checked(self):
        with pytest.raises(ValueError):
            CrashSpec("coordinator", 0, 1.0)


class TestMatching:
    def test_time_window(self):
        rule = MessageFault("drop", start=1.0, end=2.0)
        assert not rule.matches("a", "b", "tx", 0.5)
        assert rule.matches("a", "b", "tx", 1.0)
        assert not rule.matches("a", "b", "tx", 2.0)

    def test_kind_and_endpoint_filters(self):
        rule = MessageFault(
            "drop", kinds=frozenset({"tx"}), src="gk0", dst="shard1"
        )
        assert rule.matches("gk0", "shard1", "tx", 0.0)
        assert not rule.matches("gk0", "shard1", "nop", 0.0)
        assert not rule.matches("gk1", "shard1", "tx", 0.0)
        assert not rule.matches("gk0", "shard0", "tx", 0.0)

    def test_per_channel_predicate(self):
        rule = MessageFault(
            "drop", predicate=lambda src, dst, kind, now: src == dst
        )
        assert rule.matches("x", "x", "tx", 0.0)
        assert not rule.matches("x", "y", "tx", 0.0)


class TestFate:
    def test_drop_on_sequenced_kind_becomes_retransmit_delay(self):
        inj = FaultInjector(FaultPlan().drop())
        fate = inj.fate("gk0", "shard0", "tx", 0.0)
        assert fate.copies == 1
        assert fate.extra_delay == DEFAULT_RETRANSMIT_DELAY
        assert fate.faults == ("drop",)

    def test_drop_on_lossy_kind_truly_drops(self):
        inj = FaultInjector(FaultPlan().drop())
        fate = inj.fate("gk0", "gk1", "announce", 0.0)
        assert fate.copies == 0
        assert fate.extra_delay == 0.0

    def test_duplicate_delivers_two_copies(self):
        inj = FaultInjector(FaultPlan().duplicate())
        assert inj.fate("gk0", "shard0", "tx", 0.0).copies == 2

    def test_dropped_lossy_message_cannot_be_duplicated(self):
        inj = FaultInjector(FaultPlan().drop().duplicate())
        assert inj.fate("gk0", "gk1", "heartbeat", 0.0).copies == 0

    def test_delay_adds_extra_latency(self):
        inj = FaultInjector(FaultPlan().delay(extra_delay=3.0))
        assert inj.fate("a", "b", "tx", 0.0).extra_delay == 3.0

    def test_partition_holds_reliable_kind_until_heal(self):
        plan = FaultPlan(retransmit_delay=0.5).partition(
            "gk0", "shard0", start=1.0, end=2.0
        )
        inj = FaultInjector(plan)
        fate = inj.fate("gk0", "shard0", "tx", 1.25)
        assert fate.copies == 1
        # Held until the partition ends, plus one retransmission.
        assert fate.extra_delay == pytest.approx((2.0 - 1.25) + 0.5)
        # The partition is bidirectional.
        assert inj.fate("shard0", "gk0", "tx", 1.25).copies == 1
        # Outside the window, nothing happens.
        assert inj.fate("gk0", "shard0", "tx", 2.5).faults == ()

    def test_partition_loses_lossy_kind(self):
        plan = FaultPlan().partition("gk0", "gk1", start=0.0, end=1.0)
        fate = FaultInjector(plan).fate("gk0", "gk1", "announce", 0.5)
        assert fate.copies == 0

    def test_clean_message_untouched(self):
        inj = FaultInjector(FaultPlan().drop(kinds=frozenset({"tx"})))
        fate = inj.fate("a", "b", "nop", 0.0)
        assert fate.copies == 1
        assert fate.extra_delay == 0.0
        assert fate.faults == ()

    def test_same_plan_same_sequence_same_fates(self):
        def plan():
            return FaultPlan(seed=9).drop(0.3).duplicate(0.4).delay(0.5)

        msgs = [("gk0", f"shard{i % 3}", "tx", i * 0.001) for i in range(200)]
        a = FaultInjector(plan())
        b = FaultInjector(plan())
        for msg in msgs:
            assert a.fate(*msg) == b.fate(*msg)


class TestNetworkIntegration:
    def run_network(self, plan):
        sim = Simulator()
        net = Network(sim, latency=100 * USEC,
                      fault_injector=FaultInjector(plan))
        return sim, net

    def test_lossy_drop_never_delivers_and_is_counted(self):
        sim, net = self.run_network(FaultPlan().drop())
        got = []
        net.send("gk0", "gk1", got.append, 1, kind="announce")
        sim.run(10 * MSEC)
        assert got == []
        assert net.stats.fault_count("drop") == 1
        assert net.stats.count("announce") == 1  # still counted as sent

    def test_duplicate_delivers_twice(self):
        sim, net = self.run_network(FaultPlan().duplicate())
        got = []
        net.send("gk0", "shard0", got.append, 1, kind="tx")
        sim.run(10 * MSEC)
        assert got == [1, 1]
        assert net.stats.fault_count("duplicate") == 1

    def test_delayed_message_does_not_break_channel_fifo(self):
        plan = FaultPlan().delay(
            extra_delay=5 * MSEC, predicate=lambda s, d, k, n: n == 0.0
        )
        sim, net = self.run_network(plan)
        got = []
        net.send("gk0", "shard0", got.append, "first", kind="tx")
        sim.run(1 * MSEC)
        net.send("gk0", "shard0", got.append, "second", kind="tx")
        sim.run(20 * MSEC)
        # The delayed first message still arrives first: the channel
        # delivery horizon holds the second one back (TCP-style FIFO).
        assert got == ["first", "second"]

    def test_partitioned_reliable_message_arrives_after_heal(self):
        plan = FaultPlan().partition("gk0", "shard0", start=0.0, end=4 * MSEC)
        sim, net = self.run_network(plan)
        got = []
        net.send("gk0", "shard0", lambda: got.append(sim.now), kind="tx")
        sim.run(2 * MSEC)
        assert got == []  # still partitioned
        sim.run(20 * MSEC)
        assert len(got) == 1
        assert got[0] >= 4 * MSEC
        assert net.stats.fault_count("partition") == 1


class TestShardDeduplication:
    def test_duplicate_seqno_discarded(self):
        gk = Gatekeeper(0, 1)
        shard = ShardServer(0, 1, TimelineOracle())
        qtx = QueuedTransaction(gk.issue_timestamp(), (), 0, 0)
        shard.enqueue(0, qtx)
        shard.enqueue(0, qtx)  # transport-level redelivery
        assert shard.stats.duplicates_discarded == 1
        assert shard.queue_depths() == [1]
