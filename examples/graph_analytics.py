#!/usr/bin/env python3
"""Graph analytics as node programs (section 2.3's algorithm families).

Runs the heavier analysis programs — connected components via label
propagation, personalized PageRank, triangle counting, weighted
shortest paths, k-hop neighbourhoods — on a power-law graph, all
through the same consistent-snapshot machinery as simple reads, and
shows the analyses keep working (on stable snapshots!) while the graph
churns underneath them.

Run:  python examples/graph_analytics.py
"""

from repro import Weaver, WeaverClient, WeaverConfig
from repro.programs import (
    ComponentSize,
    DegreeHistogram,
    KHopNeighborhood,
    LabelPropagation,
    PushPageRank,
    TriangleCount,
    WeightedShortestPath,
    params,
)
from repro.workloads import graphs


def main():
    db = Weaver(WeaverConfig(num_gatekeepers=2, num_shards=4))
    client = WeaverClient(db)

    edges = graphs.powerlaw_graph(150, 4, seed=99)
    graphs.load_into_weaver(client, edges)
    names = graphs.vertices_of(edges)
    # Preferential attachment points edges at earlier vertices, so the
    # richest traversals start late, and the in-degree hubs sit early.
    hub = f"n{len(names) - 1}"
    indegree_hub = max(
        names, key=lambda n: sum(1 for _, d in edges if d == n)
    )
    print(f"loaded {len(names)} vertices, {len(edges)} edges; "
          f"start={hub}, in-degree hub={indegree_hub}")

    # Connected component (out-reachability) of the hub.
    component = db.run_program(ComponentSize(), hub)
    print("hub's reachable component size:", ComponentSize.size(component))

    # Community labels via label propagation.
    labels = LabelPropagation.final_labels(
        db.run_program(LabelPropagation(), hub)
    )
    print(f"label propagation converged over {len(labels)} vertices; "
          f"hub's label: {labels[hub]}")

    # Personalized PageRank from the hub.
    pr = PushPageRank(epsilon=1e-4)
    scores = PushPageRank.scores(
        db.run_program(pr, hub, params(mass=1.0))
    )
    top = sorted(scores.items(), key=lambda kv: -kv[1])[:5]
    print("top-5 personalized PageRank:",
          [(v, round(s, 4)) for v, s in top])

    # Triangles through the in-degree hub.
    triangles = TriangleCount.total(
        db.run_program(
            TriangleCount(), indegree_hub, params(phase="center")
        )
    )
    print("directed triangles through the in-degree hub:", triangles)

    # Weighted shortest path: annotate edges with weights first.
    def weigh(tx):
        for i, edge in enumerate(client.get_edges(hub)):
            tx.set_edge_property(
                hub, edge["handle"], "weight", 1.0 + (i % 3)
            )

    client.transact(weigh)
    target = client.get_edges(hub)[0]["nbr"]
    dist = WeightedShortestPath.distance(
        db.run_program(
            WeightedShortestPath(),
            hub,
            params(target=target, dist=0.0),
        )
    )
    print(f"weighted distance {hub} -> {target}: {dist}")

    # Degree histogram of the 2-hop neighbourhood.
    hist = DegreeHistogram.histogram(
        db.run_program(DegreeHistogram(), hub, params(k=2, depth=0))
    )
    print("2-hop out-degree histogram:", dict(sorted(hist.items())))

    # Analyses run on stable snapshots even while the graph churns:
    # pin a checkpoint, rewire the hub, re-run both ways.
    snapshot = db.checkpoint()
    victims = client.get_edges(hub)[:3]
    def rewire(tx):
        for edge in victims:
            tx.delete_edge(hub, edge["handle"])
    client.transact(rewire)
    now_hop = db.run_program(
        KHopNeighborhood(), hub, params(k=1, depth=0)
    )
    then_hop = db.run_program(
        KHopNeighborhood(), hub, params(k=1, depth=0), at=snapshot
    )
    print(f"1-hop neighbourhood: now {len(now_hop.results)} vertices, "
          f"at the pre-rewire snapshot {len(then_hop.results)}")
    assert len(then_hop.results) == len(now_hop.results) + 3


if __name__ == "__main__":
    main()
