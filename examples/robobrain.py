#!/usr/bin/env python3
"""A RoboBrain-style knowledge graph on Weaver (section 5.3).

RoboBrain stores concepts as vertices and labeled relationships as
edges, continuously merging noisy new knowledge into existing concepts
and splitting over-merged ones — transactionally, so that learners
querying subgraphs never observe a half-merged model.

This example implements:

* concept and relation insertion through a small ``KnowledgeGraph``
  wrapper over the Weaver client,
* a transactional **merge** (fold one concept's relations into another
  and delete it, atomically),
* a subgraph query as a node program (a concept's k-hop neighbourhood),
* a pinned "model version": a learner reading at a checkpoint sees the
  pre-merge knowledge, consistently, while the live graph moves on.

Run:  python examples/robobrain.py
"""

from repro import Weaver, WeaverClient, WeaverConfig
from repro.programs import Bfs, GetNode, params

FACTS = [
    # (subject, relation, object)
    ("mug", "is_a", "container"),
    ("mug", "has_property", "graspable"),
    ("cup", "is_a", "container"),
    ("cup", "used_for", "drinking"),
    ("kettle", "pours_into", "cup"),
    ("coffee", "served_in", "mug"),
]


class KnowledgeGraph:
    """Concepts + labeled relations with transactional merge."""

    def __init__(self, client: WeaverClient):
        self.client = client
        self._concepts = set()

    @property
    def concepts(self):
        return sorted(self._concepts)

    def add_facts(self, facts) -> None:
        def weaver_tx(tx):
            for subject, relation, obj in facts:
                for vertex in (subject, obj):
                    if not tx.vertex_exists(vertex):
                        tx.create_vertex(vertex)
                edge = tx.create_edge(subject, obj)
                tx.set_edge_property(subject, edge, "rel", relation)

        self.client.transact(weaver_tx)
        for subject, _, obj in facts:
            self._concepts.update((subject, obj))

    def relations_of(self, concept):
        return [
            (edge["properties"].get("rel"), edge["nbr"])
            for edge in self.client.get_edges(concept)
        ]

    def merge(self, keep: str, absorb: str) -> None:
        """Fold ``absorb`` into ``keep`` atomically.

        Outgoing relations are re-rooted at ``keep``, incoming relations
        re-pointed to it, and ``absorb`` deleted — in one transaction, so
        no reader ever observes both halves of the merged concept.
        """
        incoming = [
            (concept, edge)
            for concept in self._concepts
            if concept != absorb
            for edge in self.client.get_edges(concept)
            if edge["nbr"] == absorb
        ]
        outgoing = self.client.get_edges(absorb)

        def weaver_tx(tx):
            for edge in outgoing:
                new_edge = tx.create_edge(keep, edge["nbr"])
                for key, value in edge["properties"].items():
                    tx.set_edge_property(keep, new_edge, key, value)
            for src, edge in incoming:
                tx.delete_edge(src, edge["handle"])
                new_edge = tx.create_edge(src, keep)
                for key, value in edge["properties"].items():
                    tx.set_edge_property(src, new_edge, key, value)
            tx.delete_vertex(absorb)

        self.client.transact(weaver_tx)
        self._concepts.discard(absorb)


def subgraph(db, concept, hops, at=None):
    """The paper's subgraph query: a k-hop neighbourhood node program."""
    result = db.run_program(
        Bfs(), concept, params(depth=0, max_depth=hops), at=at
    )
    return result.results


def main():
    db = Weaver(WeaverConfig(num_gatekeepers=2, num_shards=3))
    client = WeaverClient(db)
    kg = KnowledgeGraph(client)

    kg.add_facts(FACTS)
    print("concepts:", kg.concepts)
    print("mug relations:", kg.relations_of("mug"))
    print("mug subgraph (2 hops):", subgraph(db, "mug", 2))

    # A learner pins a model version while the graph keeps evolving.
    model_version = db.checkpoint()

    # Curators decide 'mug' and 'cup' are the same concept: merge.
    kg.merge("cup", "mug")
    print("after merge, cup subgraph:", subgraph(db, "cup", 2))
    print("coffee now served in:",
          [nbr for _, nbr in kg.relations_of("coffee")])

    # The pinned model still sees the pre-merge world, consistently.
    print("pinned model still sees mug's neighbourhood:",
          subgraph(db, "mug", 2, at=model_version))

    # And the current world has no trace of 'mug'.
    assert db.run_program(GetNode(), "mug").results == []
    print("merge was atomic: 'mug' is gone from the live graph")


if __name__ == "__main__":
    main()
