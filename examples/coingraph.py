#!/usr/bin/env python3
"""CoinGraph: a Bitcoin blockchain explorer on Weaver (section 5.2).

Loads a synthetic blockchain segment (the real chain's per-block
transaction growth curve, scaled down), then:

* renders blocks with the node program behind Fig 7/8,
* runs taint tracking over ``spends`` edges — the flow analysis the
  paper lists among CoinGraph's algorithms,
* compares functional results and simulated cost against the
  Blockchain.info-like relational baseline,
* demonstrates why transactions matter: a block and its transactions
  appear atomically, never partially (section 5.4's fork-consistency
  argument).

Run:  python examples/coingraph.py
"""

from repro import Weaver, WeaverClient, WeaverConfig
from repro.baselines.blockchain_info import RelationalExplorer
from repro.bench.models import CoinGraphModel
from repro.programs import CollectReachable
from repro.workloads import bitcoin


def main():
    db = Weaver(WeaverConfig(num_gatekeepers=2, num_shards=4))
    client = WeaverClient(db)

    # A chain segment with the real growth curve at 2% scale.
    generator = bitcoin.BlockchainGenerator(seed=2009, scale=0.02)
    heights = [100_000, 150_000, 200_000, 250_000, 300_000, 350_000]
    blocks = generator.generate(heights)
    bitcoin.load_into_weaver(client, blocks, with_spend_edges=True)
    explorer = RelationalExplorer()
    bitcoin.load_into_explorer(explorer, blocks)
    print(f"loaded {len(blocks)} blocks, "
          f"{sum(len(b.transactions) for b in blocks)} transactions")

    # Render each block; cross-check against the relational baseline and
    # report the simulated latency both systems would pay at full scale.
    model = CoinGraphModel()
    print(f"{'block':>10} {'txs':>6} {'CoinGraph(s)':>13} {'BC.info(s)':>11}")
    for block in blocks:
        rendered = client.render_block(block.block_id)
        reference, _ = explorer.render_block(block.block_id)
        assert rendered["n_tx"] == reference["n_tx"]
        full_scale = bitcoin.txs_in_block(block.height)
        cg = model.block_query_latency(full_scale)
        bc = (2 * explorer.costs.wan_latency
              + full_scale * explorer.costs.sql_row_service)
        print(f"{block.height:>10} {full_scale:>6} {cg:>13.3f} {bc:>11.3f}")

    # Taint tracking: which transactions are downstream of a tainted one?
    tainted_source = blocks[0].transactions[0].tx_id
    # Taint flows along the *incoming* spends edges of later txs, so
    # walk from a recent tx back through what it spends.
    recent = blocks[-1].transactions[-1].tx_id
    upstream = db.run_program(CollectReachable(), recent, None)
    touched = [v for v in upstream.results if v.startswith("tx")]
    print(f"{recent} draws from {len(touched)} upstream transactions; "
          f"tainted source reachable: {tainted_source in touched}")

    # Atomic block arrival: a new block's vertex, transactions, and
    # edges commit together, so a concurrent reader sees all or nothing.
    checkpoint = db.checkpoint()
    new_block = generator.generate_block(360_000)
    bitcoin.load_into_weaver(client, [new_block])
    now = client.render_block(new_block.block_id)
    print(f"new block {new_block.block_id}: {now['n_tx']} txs visible now")
    from repro.programs import GetNode

    at_checkpoint = db.run_program(
        GetNode(), new_block.block_id, at=checkpoint
    )
    print("visible at the pre-arrival checkpoint:",
          bool(at_checkpoint.results))


if __name__ == "__main__":
    main()
