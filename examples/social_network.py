#!/usr/bin/env python3
"""A social-network backend on Weaver (section 5.1, Fig 2).

Implements the TAO-style operations Facebook's workload is built from:
posting content with access control in one atomic transaction, rendering
a user's visible photos, and replaying the Table 1 operation mix against
the live database.

The key property demonstrated: because the post-and-ACL update is one
transaction, a concurrent reader can never see the photo without its
access-control edges — the security flaw the paper's section 5.4 warns
a weakly-consistent store would allow.

Run:  python examples/social_network.py
"""

from repro import Weaver, WeaverClient, WeaverConfig
from repro.workloads import graphs
from repro.workloads.runner import run_tao
from repro.workloads.tao import TaoWorkload


def post_photo(client, user, friends):
    """The paper's Fig 2 transaction, verbatim in this API."""

    def weaver_tx(tx):
        photo = tx.create_node()
        own_edge = tx.create_edge(user, photo)
        tx.assign_property(own_edge, user, "OWNS")
        for nbr in friends:
            access_edge = tx.create_edge(photo, nbr)
            tx.assign_property(access_edge, photo, "VISIBLE")
        return photo

    return client.transact(weaver_tx)


def visible_photos(client, owner, viewer):
    """Photos of ``owner`` whose ACL edge reaches ``viewer``."""
    photos = []
    for edge in client.get_edges(owner, edge_prop="OWNS"):
        photo = edge["nbr"]
        acl = client.get_edges(photo, edge_prop="VISIBLE")
        if any(e["nbr"] == viewer for e in acl):
            photos.append(photo)
    return photos


def main():
    db = Weaver(WeaverConfig(num_gatekeepers=3, num_shards=4))
    client = WeaverClient(db)

    # Build a small social graph.
    with client.transaction() as tx:
        for user in ("alice", "bob", "carol", "dan"):
            tx.create_vertex(user)

    # Alice posts a photo visible to bob and carol — but not dan.
    photo = post_photo(client, "alice", ["bob", "carol"])
    print("alice posted", photo)
    print("bob sees:", visible_photos(client, "alice", "bob"))
    print("dan sees:", visible_photos(client, "alice", "dan"))

    # Access control and content move atomically: revoke carol and add
    # dan in one transaction; no reader can observe the half-way state.
    acl_edges = client.get_edges(photo, edge_prop="VISIBLE")
    carol_edge = next(e for e in acl_edges if e["nbr"] == "carol")

    def swap_acl(tx):
        tx.delete_edge(photo, carol_edge["handle"])
        new_edge = tx.create_edge(photo, "dan")
        tx.assign_property(new_edge, photo, "VISIBLE")

    client.transact(swap_acl)
    print("after ACL swap -> carol sees:",
          visible_photos(client, "alice", "carol"),
          "dan sees:", visible_photos(client, "alice", "dan"))

    # Replay the TAO mix (Table 1) over a LiveJournal-like graph.
    edges = graphs.social_graph(300, 5, seed=11)
    handles = graphs.load_into_weaver(client, edges)
    pool = [(k.split("->", 1)[0], h) for k, h in handles.items()]
    workload = TaoWorkload(
        graphs.vertices_of(edges), edge_pool=pool, seed=11
    )
    report = run_tao(client, workload, 500)
    print(f"TAO replay: {report.operations} ops, "
          f"{report.failures} failures, mix={report.counts}")
    print(f"reactively ordered fraction: {report.reactive_fraction:.5f}")


if __name__ == "__main__":
    main()
