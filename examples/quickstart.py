#!/usr/bin/env python3
"""Quickstart: a tour of the Weaver reproduction's public API.

Covers the paper's core feature set end to end:

1. ACID transactions over a property graph (section 2.2),
2. node programs — traversals on consistent snapshots (section 2.3),
3. multi-version historical queries (section 3.1),
4. garbage collection (section 4.5),
5. fault tolerance: shard and gatekeeper failover (section 4.3).

Run:  python examples/quickstart.py
"""

from repro import Weaver, WeaverClient, WeaverConfig


def main():
    # A deployment with 2 gatekeepers and 2 shards, all in-process.
    db = Weaver(WeaverConfig(num_gatekeepers=2, num_shards=2))
    client = WeaverClient(db)

    # -- 1. Transactions ---------------------------------------------------
    # Everything inside the block commits atomically, or not at all.
    with client.transaction() as tx:
        for person in ("alice", "bob", "carol", "dan"):
            tx.create_vertex(person)
        tx.set_property("alice", "city", "ithaca")
        follows = tx.create_edge("alice", "bob")
        tx.set_edge_property("alice", follows, "follows", True)
        tx.create_edge("bob", "carol", "bc")
        tx.create_edge("carol", "dan", "cd")
    print("committed at timestamp", tx.timestamp)

    # -- 2. Node programs ---------------------------------------------------
    print("alice ->", client.get_node("alice"))
    print("bfs from alice:", client.traverse("alice"))
    print("alice reaches dan?", client.reachable("alice", "dan"))
    print("path:", client.find_path("alice", "dan"))
    print("shortest path length:",
          client.shortest_path_length("alice", "dan"))

    # -- 3. Historical queries ---------------------------------------------
    # A checkpoint pins a consistent past version of the graph.
    before = db.checkpoint()
    client.delete_edge("bob", "bc")
    print("after unfollow, alice reaches dan?",
          client.reachable("alice", "dan"))
    print("...but at the checkpoint she did:",
          client.reachable("alice", "dan", at=before))

    # -- 4. Garbage collection ----------------------------------------------
    reclaimed = db.collect_garbage()
    print("garbage collected:", reclaimed)

    # -- 5. Fault tolerance ---------------------------------------------
    # Crash a shard: its partition reloads from the backing store.
    db.fail_shard(0)
    print("after shard failover, alice ->", client.get_node("alice"))
    # Crash a gatekeeper: the epoch bumps, ordering stays monotonic.
    db.fail_gatekeeper(1)
    client.set_property("alice", "city", "nyc")
    print("after gatekeeper failover, alice ->", client.get_node("alice"))

    # -- How was everything ordered? --------------------------------------
    print("ordering decisions:", db.ordering_stats())


if __name__ == "__main__":
    main()
