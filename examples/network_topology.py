#!/usr/bin/env python3
"""A network controller on Weaver: the paper's Fig 1 scenario.

A software-defined-network controller stores the topology in the graph
database and answers path-discovery queries.  The paper's motivating
bug: if link (n3, n5) fails while link (n5, n7) comes up, a
non-transactional store can return the path n1 -> n3 -> n5 -> n7 — a
path that never existed at any instant.

This example shows Weaver closing that hole: the two link changes commit
atomically, every path query runs on one consistent snapshot, and
historical queries reconstruct the topology at any earlier checkpoint
(handy for postmortems).

Run:  python examples/network_topology.py
"""

from repro import Weaver, WeaverClient, WeaverConfig

LINKS = [
    ("n1", "n2"), ("n1", "n3"),
    ("n2", "n4"), ("n3", "n4"),
    ("n3", "n5"),
    ("n4", "n6"),
    ("n5", "n6"),
]


def link_handle(a, b):
    return f"{a}-{b}"


def main():
    db = Weaver(WeaverConfig(num_gatekeepers=2, num_shards=3))
    client = WeaverClient(db)

    # Install the Fig 1 topology (n7 starts disconnected).
    with client.transaction() as tx:
        for node in ("n1", "n2", "n3", "n4", "n5", "n6", "n7"):
            tx.create_vertex(node)
        for a, b in LINKS:
            # Links are bidirectional: one edge each way, tagged "up".
            for src, dst in ((a, b), (b, a)):
                handle = tx.create_edge(src, dst, link_handle(src, dst))
                tx.set_edge_property(src, handle, "up", True)

    print("initial path n1 -> n6:",
          client.find_path("n1", "n6", edge_prop="up"))
    print("n7 reachable initially?", client.reachable("n1", "n7"))

    # Record the pre-churn topology for later debugging.
    pre_churn = db.checkpoint()

    # The churn event, exactly as in Fig 1: (n3, n5) fails AND (n5, n7)
    # comes up — one atomic reconfiguration.
    def churn(tx):
        tx.delete_edge("n3", link_handle("n3", "n5"))
        tx.delete_edge("n5", link_handle("n5", "n3"))
        for src, dst in (("n5", "n7"), ("n7", "n5")):
            handle = tx.create_edge(src, dst, link_handle(src, dst))
            tx.set_edge_property(src, handle, "up", True)

    client.transact(churn)

    # The phantom path n1 -> n3 -> n5 -> n7 must NOT be discoverable:
    # n5 is now only reachable via n6, and n7 only via n5.
    path = client.find_path("n1", "n7", edge_prop="up")
    print("path n1 -> n7 after churn:", path)
    assert path is not None and ("n3", "n5") not in zip(path, path[1:]), (
        "phantom path through the failed link!"
    )

    # Postmortem: what did the network look like before the churn?
    print("pre-churn topology had n3-n5?",
          client.find_path("n3", "n5", at=pre_churn) == ["n3", "n5"])
    print("pre-churn n7 reachable?",
          client.reachable("n1", "n7", at=pre_churn))

    # Failure drill: a shard crash must not lose the topology.
    db.fail_shard(1)
    print("after shard failover, n1 -> n7:",
          client.find_path("n1", "n7", edge_prop="up"))


if __name__ == "__main__":
    main()
