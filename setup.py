"""Setuptools shim.

Allows ``pip install -e . --no-use-pep517`` on machines without the
``wheel`` package (this environment is offline); all metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
